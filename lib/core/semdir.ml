type remote_result = {
  rr_ns : string;
  rr_uri : string;
  rr_name : string;
  rr_stale : bool;
}

type t = {
  uid : int;
  mutable query : Hac_query.Ast.t;
  links : (string, Link.t) Hashtbl.t;
  mutable transient_local : Hac_bitset.Fileset.t;
  mutable transient_remote : remote_result list;
  mutable materialized : bool;
  prohibited : (string, unit) Hashtbl.t;
  mutable last_synced : int;
  mutable meta_dirty : bool;
}

let create ~uid query =
  {
    uid;
    query;
    links = Hashtbl.create 16;
    transient_local = Hac_bitset.Fileset.empty;
    transient_remote = [];
    materialized = false;
    prohibited = Hashtbl.create 8;
    last_synced = 0;
    meta_dirty = true;
  }

let find_link sd name = Hashtbl.find_opt sd.links name

let link_by_target sd target =
  let key = Link.target_key target in
  Hashtbl.fold
    (fun _ l acc ->
      match acc with
      | Some _ -> acc
      | None -> if Link.target_key l.Link.target = key then Some l else None)
    sd.links None

let add_link sd l =
  Hashtbl.replace sd.links l.Link.name l;
  sd.meta_dirty <- true

let remove_link sd name =
  match Hashtbl.find_opt sd.links name with
  | None -> None
  | Some l ->
      Hashtbl.remove sd.links name;
      sd.meta_dirty <- true;
      Some l

let sorted_links ls = List.sort (fun a b -> compare a.Link.name b.Link.name) ls

let links_of_cls sd cls =
  Hashtbl.fold (fun _ l acc -> if l.Link.cls = cls then l :: acc else acc) sd.links []
  |> sorted_links

let all_links sd = Hashtbl.fold (fun _ l acc -> l :: acc) sd.links [] |> sorted_links

let prohibit sd key =
  Hashtbl.replace sd.prohibited key ();
  sd.meta_dirty <- true

let unprohibit sd key =
  if Hashtbl.mem sd.prohibited key then begin
    Hashtbl.remove sd.prohibited key;
    sd.meta_dirty <- true
  end

let is_prohibited sd key = Hashtbl.mem sd.prohibited key

let prohibited_keys sd =
  Hashtbl.fold (fun k () acc -> k :: acc) sd.prohibited [] |> List.sort compare

let fresh_link_name sd ~taken target =
  let base = Link.display_name target in
  let used name = Hashtbl.mem sd.links name || taken name in
  if not (used base) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s~%d" base i in
      if used candidate then go (i + 1) else candidate
    in
    go 2

let approx_bytes sd =
  let word = Sys.int_size / 8 + 1 in
  let query_bytes = Hac_query.Ast.size sd.query * 4 * word in
  let links_bytes =
    Hashtbl.fold
      (fun name l acc ->
        acc + String.length name + String.length (Link.target_key l.Link.target) + (6 * word))
      sd.links 0
  in
  let result_bytes =
    Hac_bitset.Fileset.byte_size sd.transient_local
    + List.fold_left
        (fun acc r -> acc + String.length r.rr_uri + String.length r.rr_name + (4 * word))
        0 sd.transient_remote
  in
  let prohibited_bytes =
    Hashtbl.fold (fun k () acc -> acc + String.length k + (3 * word)) sd.prohibited 0
  in
  query_bytes + links_bytes + result_bytes + prohibited_bytes + (8 * word)
