(** Per-directory query-result cache.

    Each semantic directory's last evaluated {e local} result is memoized as
    [(query fingerprint, scope generation, Fileset.t)].  The fingerprint is
    the printed query (uid-form dirrefs, so it is stable across renames of
    referenced directories); the generation is {!Ctx.t.scope_generation},
    which every index or namespace mutation bumps.  A lookup hits only when
    both match, so a hit is O(1) and provably as fresh as the last
    evaluation; anything else is a miss and falls back to evaluation.

    Remote results are never cached: their value depends on namespace
    availability and the stale re-serve policy, not only on index state. *)

type t

type stats = {
  hits : int;  (** Lookups answered from the cache. *)
  misses : int;  (** Lookups that fell back to query evaluation. *)
  entries : int;  (** Directories with a live cache entry. *)
  drops : int;  (** Entries discarded because their directory went away. *)
  bytes : int;
      (** Total {!Hac_bitset.Fileset.byte_size} of the cached result sets,
          maintained incrementally on store/drop/clear. *)
}

val create : ?metrics:Hac_obs.Metrics.t -> unit -> t
(** Counters register as [rescache.hits]/[.misses]/[.drops] plus
    [rescache.entries] and [rescache.bytes] gauges in [metrics] (a private
    registry when omitted); {!stats} reads those same instruments back. *)

val find :
  t -> uid:int -> fingerprint:string -> generation:int -> Hac_bitset.Fileset.t option
(** The cached result, if its fingerprint and generation both match.
    Counts a hit or a miss either way. *)

val store :
  t -> uid:int -> fingerprint:string -> generation:int -> Hac_bitset.Fileset.t -> unit
(** Record a directory's freshly evaluated result (replaces any entry). *)

val drop : t -> uid:int -> unit
(** Forget a directory's entry (it was removed or lost its query). *)

val clear : t -> unit
(** Forget everything (counts every entry as dropped). *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the counters; live entries are kept. *)
