module Fs = Hac_vfs.Fs

type journal_report = { applied : int; corrupt : int; malformed : int }

(* Record replay itself lives in {!Journal} (shared with compaction); this
   module turns a replayed chain into restored semantic directories. *)

let replay_journal_report text =
  let r = Journal.replay_create () in
  Journal.replay_text r text;
  ( r.Journal.map,
    { applied = r.Journal.applied; corrupt = r.Journal.corrupt; malformed = r.Journal.malformed }
  )

let replay_journal text = fst (replay_journal_report text)

(* Structure files are sealed whole ({!Seal.seal_blob}); a damaged or
   unsealed one reads as absent (all-or-nothing). *)
let read_opt fs path =
  match Fs.read_file fs path with
  | data -> Seal.unseal_file data
  | exception Hac_vfs.Errno.Error _ -> None

let chain_replay t =
  let chain = Journal.read_chain (Hac.fs t) in
  (chain, Journal.replay_chain chain)

let report_of_replay (r : Journal.replay) =
  { applied = r.Journal.applied; corrupt = r.Journal.corrupt; malformed = r.Journal.malformed }

let journal_map t = (snd (chain_replay t)).Journal.map

let record_replay_metrics t (chain : Journal.chain) (r : Journal.replay) =
  let i = Hac.instr t in
  Hac_obs.Metrics.incr ~by:r.Journal.applied i.Instr.journal_replay_applied;
  Hac_obs.Metrics.incr ~by:r.Journal.corrupt i.Instr.journal_replay_corrupt;
  Hac_obs.Metrics.incr ~by:r.Journal.malformed i.Instr.journal_replay_malformed;
  (* [recover.records_skipped] is deliberately NOT incremented here: this
     function runs once per {e replay}, and a recovery may replay the chain
     more than once (a diagnostic {!journal_report} probe before the
     reload, or a checkpoint-copy fallback after a torn live structure).
     The recovery entry points count each damaged record exactly once. *)
  Hac_obs.Metrics.set i.Instr.recover_segments_replayed
    (float_of_int (List.length chain.Journal.segments));
  Hac_obs.Metrics.set i.Instr.recover_checkpoint_age (float_of_int r.Journal.seg_applied);
  (* The flight recorder keeps the replay outcome; damaged records are a
     breach — the recent history is frozen to a dump (when auto-dump is
     configured) so the run-up to the corruption survives the restart. *)
  let fl = i.Instr.flight in
  Hac_obs.Flight.metric fl ~name:"journal.replay.applied"
    ~value:(float_of_int r.Journal.applied);
  let damaged = r.Journal.corrupt + r.Journal.malformed in
  if damaged > 0 then begin
    Hac_obs.Flight.transition fl ~subsystem:"recover" ~from_:"clean" ~to_:"damaged"
      ~reason:
        (Printf.sprintf "replay skipped %d records (%d corrupt, %d malformed)" damaged
           r.Journal.corrupt r.Journal.malformed);
    ignore (Hac_obs.Flight.breach fl ~reason:"crash recovery skipped journal records")
  end

let journal_report t =
  let chain, r = chain_replay t in
  record_replay_metrics t chain r;
  report_of_replay r

let journal_paths t =
  Hashtbl.fold (fun uid path acc -> (uid, path) :: acc) (journal_map t) []
  |> List.sort compare

let non_empty_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

(* .links lines: "<permanent|transient> <name> <target>" (plus "remote ..."
   result lines, which the adoption of physical links supersedes). *)
let permanent_names links_text =
  non_empty_lines links_text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | "permanent" :: name :: _ -> Some name
         | _ -> None)

type reload_report = {
  restored : int;
  skipped : int;
  journal : journal_report;
  segments_replayed : int;
  checkpoint_epoch : int option;
}

(* Structure files for one uid, read from [fs] under the live metadata area
   or from a checkpoint image (where they sit at the root). *)
let structures_of fs ~root uid =
  match read_opt fs (Printf.sprintf "%ssd-%d.query" root uid) with
  | None -> None
  | Some query_text ->
      let query = String.trim query_text in
      if query = "" then None
      else
        let permanent =
          match read_opt fs (Printf.sprintf "%ssd-%d.links" root uid) with
          | Some text -> permanent_names text
          | None -> []
        in
        let prohibited =
          match read_opt fs (Printf.sprintf "%ssd-%d.proh" root uid) with
          | Some text -> non_empty_lines text
          | None -> []
        in
        Some (query, permanent, prohibited)

(* Restore the given semantic [(uid, path)] entries' structures.  Snapshot
   every candidate's structures first: restoring persists fresh metadata,
   which must never be re-read as recovered input.  Live files are
   preferred (they carry post-checkpoint settles); the checkpoint's copies
   back them up when the live file was torn, rotted or lost. *)
let restore_entries t (chain : Journal.chain) entries =
  let fs = Hac.fs t in
  let live_root = Journal.meta_root ^ "/" in
  let blob_structures uid =
    match chain.Journal.checkpoint with
    | None -> None
    | Some (_, img) -> structures_of img ~root:"/" uid
  in
  let plan =
    List.filter_map
      (fun (uid, path) ->
        if not (Fs.is_dir fs path) then None
        else
          match (structures_of fs ~root:live_root uid, blob_structures uid) with
          | None, None -> None
          | live, blob -> Some (path, live, blob))
      entries
  in
  let restored = ref 0 and skipped = ref 0 in
  let try_restore path = function
    | None -> false
    | Some (query, permanent, prohibited) -> (
        match Hac.restore_semdir t path ~query ~permanent ~prohibited with
        | () -> true
        | exception Hac.Hac_error _ -> false)
  in
  List.iter
    (fun (path, live, blob) ->
      if Hac.is_semantic t path then incr skipped
      else if try_restore path live then incr restored
      else if blob <> live && try_restore path blob then incr restored
      else (* Unparseable or cyclic after the crash: leave it plain. *)
        incr skipped)
    plan;
  Hac_obs.Metrics.incr ~by:!skipped (Hac.instr t).Instr.recover_dirs_skipped;
  (!restored, !skipped)

let reload_report t =
  Hac_obs.Trace.with_span (Hac.tracer t) ~name:"recover.reload" (fun () ->
  let chain, r = chain_replay t in
  record_replay_metrics t chain r;
  (* Once per recovery, whatever mix of probes, replays and checkpoint-copy
     fallbacks it took to get here: each damaged record is one skip. *)
  Hac_obs.Metrics.incr
    ~by:(r.Journal.corrupt + r.Journal.malformed)
    (Hac.instr t).Instr.recover_records_skipped;
  let journal = report_of_replay r in
  let fs = Hac.fs t in
  let live_root = Journal.meta_root ^ "/" in
  (* Which uids were semantic?  Chains written by this code flag them with
     S records; a legacy chain (no S record anywhere) falls back to the old
     inference — a structure file exists for the uid. *)
  let legacy = Hashtbl.length r.Journal.sem = 0 in
  let entries =
    if not legacy then Journal.semantic_entries r
    else
      Hashtbl.fold
        (fun uid path acc ->
          if structures_of fs ~root:live_root uid <> None then (uid, path) :: acc else acc)
        r.Journal.map []
      |> List.sort compare
  in
  let restored, skipped = restore_entries t chain entries in
  Hac.sync_all t;
  (* The old instance's identifiers are dead; re-key the metadata area
     (atomically — a crash mid-recovery leaves the old chain intact). *)
  Hac.checkpoint_metadata t;
  {
    restored;
    skipped;
    journal;
    segments_replayed = List.length chain.Journal.segments;
    checkpoint_epoch = Option.map fst chain.Journal.checkpoint;
  })

let reload t = (reload_report t).restored

(* -- mounting a tree ------------------------------------------------------- *)

(* The O(delta) mount: try {!Hac.fast_adopt} — namespace and index skeleton
   from the checkpoint's reconstruction images, postings demand-faulted
   from the store's segments — and fall back to the full oracle
   ({!Hac.of_fs} + {!reload_report}, which re-reads and re-tokenizes every
   document) whenever the images cannot vouch for the tree.  Either way
   the instance comes back with the storage tier enabled. *)
let mount ?block_size ?stem ?transducer ?auto_sync ?reindex_every ?budget fs =
  let t0 = Sys.time () in
  let finish t mode =
    (match Hac.store t with
    | Some store ->
        let si = Hac_store.Store.instr store in
        Hac_obs.Metrics.set si.Hac_store.Store.mount_reconstruct_ms
          ((Sys.time () -. t0) *. 1000.);
        if mode = `Full then Hac_obs.Metrics.incr si.Hac_store.Store.mount_fallbacks
    | None -> ());
    (t, mode)
  in
  match
    Hac.fast_adopt ?block_size ?stem ?transducer ?auto_sync ?reindex_every ?budget fs
  with
  | Ok (t, entries) ->
      let chain, r = chain_replay t in
      record_replay_metrics t chain r;
      (* fast_adopt refused any chain with damaged records, so there are
         no skips to count on this path. *)
      ignore (restore_entries t chain entries : int * int);
      (* Process the journaled dirty delta now: the instance returns with
         index and query results consistent with the tree. *)
      Hac.settle t;
      finish t `Fast
  | Error _reason ->
      let t = Hac.of_fs ?block_size ?stem ?transducer ?auto_sync ?reindex_every fs in
      let (_ : reload_report) = reload_report t in
      Hac.enable_store ?budget t;
      finish t `Full
