module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath

type journal_report = { applied : int; corrupt : int; malformed : int }

(* dirs.log records (appended by the event handler, one {!Journal.seal}ed
   line each):
     D <uid> <path>     directory created
     M <uid> <path>     directory (and hence its subtree) moved here
     X <uid>            directory removed
   Replaying them yields the uid -> path map as of shutdown.  A crash can
   tear the trailing record and anything can corrupt earlier ones; such
   lines fail their checksum, are counted and skipped — every intact record
   still applies. *)
let replay_journal_report text =
  let map = Hashtbl.create 64 in
  let applied = ref 0 and corrupt = ref 0 and malformed = ref 0 in
  let apply_move uid new_path =
    match Hashtbl.find_opt map uid with
    | None -> Hashtbl.replace map uid new_path
    | Some old_path ->
        (* The move carries the whole registered subtree along. *)
        Hashtbl.iter
          (fun u p ->
            match Vpath.replace_prefix ~prefix:old_path ~by:new_path p with
            | Some p' when Vpath.is_prefix ~prefix:old_path p ->
                Hashtbl.replace map u p'
            | Some _ | None -> ())
          (Hashtbl.copy map)
  in
  (* Paths may contain spaces: D and M both take everything after the uid
     as the path (rest-concat), never a fixed arity. *)
  let handle_body body =
    match String.split_on_char ' ' (String.trim body) with
    | "D" :: uid :: rest when rest <> [] -> (
        match int_of_string_opt uid with
        | Some uid ->
            incr applied;
            Hashtbl.replace map uid (String.concat " " rest)
        | None -> incr malformed)
    | "M" :: uid :: rest when rest <> [] -> (
        match int_of_string_opt uid with
        | Some uid ->
            incr applied;
            apply_move uid (String.concat " " rest)
        | None -> incr malformed)
    | [ "X"; uid ] -> (
        match int_of_string_opt uid with
        | Some uid ->
            incr applied;
            Hashtbl.remove map uid
        | None -> incr malformed)
    | _ -> incr malformed
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match Journal.parse line with
         | Journal.Valid body -> handle_body body
         | Journal.Corrupt _ -> incr corrupt
         | Journal.Blank -> ());
  (map, { applied = !applied; corrupt = !corrupt; malformed = !malformed })

let replay_journal text = fst (replay_journal_report text)

let read_opt fs path =
  try Some (Fs.read_file fs path) with Hac_vfs.Errno.Error _ -> None

let journal_map t =
  match read_opt (Hac.fs t) "/.hac/dirs.log" with
  | None -> Hashtbl.create 0
  | Some text -> replay_journal text

let journal_report t =
  let report =
    match read_opt (Hac.fs t) "/.hac/dirs.log" with
    | None -> { applied = 0; corrupt = 0; malformed = 0 }
    | Some text -> snd (replay_journal_report text)
  in
  let i = Hac.instr t in
  Hac_obs.Metrics.incr ~by:report.applied i.Instr.journal_replay_applied;
  Hac_obs.Metrics.incr ~by:report.corrupt i.Instr.journal_replay_corrupt;
  Hac_obs.Metrics.incr ~by:report.malformed i.Instr.journal_replay_malformed;
  report

let journal_paths t =
  Hashtbl.fold (fun uid path acc -> (uid, path) :: acc) (journal_map t) []
  |> List.sort compare

let non_empty_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

(* .links lines: "<permanent|transient> <name> <target>" (plus "remote ..."
   result lines, which the adoption of physical links supersedes). *)
let permanent_names links_text =
  non_empty_lines links_text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | "permanent" :: name :: _ -> Some name
         | _ -> None)

type reload_report = {
  restored : int;
  skipped : int;
  journal : journal_report;
}

let reload_report t =
  Hac_obs.Trace.with_span (Hac.tracer t) ~name:"recover.reload" (fun () ->
  let journal = journal_report t in
  let fs = Hac.fs t in
  (* Snapshot all recoverable state first: restoring writes fresh metadata
     under this instance's uids, which must not alias the old ones. *)
  let plan =
    Hashtbl.fold
      (fun uid path acc ->
        match read_opt fs (Printf.sprintf "/.hac/sd-%d.query" uid) with
        | None -> acc (* never semantic, or metadata gone *)
        | Some query_text ->
            let query = String.trim query_text in
            if query = "" || not (Fs.is_dir fs path) then acc
            else
              let permanent =
                match read_opt fs (Printf.sprintf "/.hac/sd-%d.links" uid) with
                | Some text -> permanent_names text
                | None -> []
              in
              let prohibited =
                match read_opt fs (Printf.sprintf "/.hac/sd-%d.proh" uid) with
                | Some text -> non_empty_lines text
                | None -> []
              in
              (path, query, permanent, prohibited) :: acc)
      (journal_map t) []
    |> List.sort compare
  in
  let restored = ref 0 and skipped = ref 0 in
  List.iter
    (fun (path, query, permanent, prohibited) ->
      if Hac.is_semantic t path then incr skipped
      else
        match Hac.restore_semdir t path ~query ~permanent ~prohibited with
        | () -> incr restored
        | exception Hac.Hac_error _ ->
            (* Unparseable or cyclic after the crash: leave it plain. *)
            incr skipped)
    plan;
  (* The old instance's identifiers are dead; re-key the metadata area. *)
  Hac.checkpoint_metadata t;
  Hac.sync_all t;
  { restored = !restored; skipped = !skipped; journal })

let reload t = (reload_report t).restored
