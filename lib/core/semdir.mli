(** Per-directory semantic state: query, link sets, prohibitions.

    One [Semdir.t] exists for every directory created with [smkdir] (or
    retro-fitted with [schquery]).  It records the query, the classification
    of each present symbolic link, and the set of prohibited target keys.
    The physical symlinks live in the VFS; this structure is HAC's view of
    them.  All mutators here are local bookkeeping — enforcing the scope
    invariant is {!Sync}'s job. *)

type remote_result = {
  rr_ns : string;  (** Namespace the entry came from. *)
  rr_uri : string;  (** Entry identifier (the link's target key). *)
  rr_name : string;  (** Display name, used as the link name. *)
  rr_stale : bool;
      (** True when the entry was {e not} confirmed by the namespace during
          the last re-evaluation but re-served from the previous result
          because the namespace was unavailable (graceful degradation). *)
}
(** One remote entry in the current query result. *)

type t = {
  uid : int;  (** The directory's identifier in the global map. *)
  mutable query : Hac_query.Ast.t;  (** Dirrefs are installed ([Ref_uid]). *)
  links : (string, Link.t) Hashtbl.t;
      (** {e Physically present} links, by link name: permanent ones, and
          transient ones once materialised. *)
  mutable transient_local : Hac_bitset.Fileset.t;
      (** The current local query result — the paper's per-directory result
          bitmap (N/8 bytes when dense). *)
  mutable transient_remote : remote_result list;
      (** The current remote query result. *)
  mutable materialized : bool;
      (** Whether the transient result has been expanded into physical
          symbolic links.  Materialisation happens lazily on first access
          through HAC and is then kept consistent by every re-evaluation. *)
  prohibited : (string, unit) Hashtbl.t;  (** Prohibited target keys. *)
  mutable last_synced : int;  (** Logical stamp of the last re-evaluation. *)
  mutable meta_dirty : bool;
      (** True when links or prohibitions changed since the last persist —
          lets {!Sync} skip the metadata write for untouched directories
          without ever losing recovery state.  Set by every mutator here;
          cleared by {!Sync} after persisting. *)
}

val create : uid:int -> Hac_query.Ast.t -> t
(** Fresh semantic directory state with no links and no prohibitions. *)

val find_link : t -> string -> Link.t option
(** Present link by name. *)

val link_by_target : t -> Link.target -> Link.t option
(** Present link by target key, if any. *)

val add_link : t -> Link.t -> unit
(** Record a present link (replaces any record under the same name). *)

val remove_link : t -> string -> Link.t option
(** Forget a present link by name; returns what was removed. *)

val links_of_cls : t -> Link.cls -> Link.t list
(** Present links of one class, sorted by name. *)

val all_links : t -> Link.t list
(** Every present link, sorted by name. *)

val prohibit : t -> string -> unit
(** Add a target key to the prohibited set. *)

val unprohibit : t -> string -> unit
(** Remove a target key from the prohibited set (a user re-adding a link is
    a direct action that lifts the prohibition). *)

val is_prohibited : t -> string -> bool
(** Whether the target key is prohibited. *)

val prohibited_keys : t -> string list
(** Sorted prohibited target keys. *)

val fresh_link_name : t -> taken:(string -> bool) -> Link.target -> string
(** A link name for the target that collides neither with present links nor
    with [taken] (the physical directory entries): the display name, or
    [name~2], [name~3], ... *)

val approx_bytes : t -> int
(** Estimated memory footprint of this record, for space accounting. *)
