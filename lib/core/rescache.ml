module Fileset = Hac_bitset.Fileset
module Metrics = Hac_obs.Metrics

(* Each entry carries the byte size of its result (as {!Fileset.byte_size}
   reported at store time): result sets are immutable, so the figure stays
   exact until the entry is replaced or dropped, and the cache's total
   footprint is maintained incrementally instead of re-measured per query. *)
type entry = { fingerprint : string; generation : int; result : Fileset.t; bytes : int }

type stats = { hits : int; misses : int; entries : int; drops : int; bytes : int }

(* Accounting lives in a metrics registry (the owning instance's, so the
   shell's `metrics` sees it under rescache.hits etc.); [stats] is a thin
   reader over those instruments, kept so the pre-registry API survives
   unchanged. *)
type t = {
  tbl : (int, entry) Hashtbl.t;
  mutable total_bytes : int;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  c_drops : Metrics.counter;
  g_entries : Metrics.gauge;
  g_bytes : Metrics.gauge;
}

let create ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    tbl = Hashtbl.create 64;
    total_bytes = 0;
    c_hits = Metrics.counter m "rescache.hits";
    c_misses = Metrics.counter m "rescache.misses";
    c_drops = Metrics.counter m "rescache.drops";
    g_entries = Metrics.gauge m "rescache.entries";
    g_bytes = Metrics.gauge m "rescache.bytes";
  }

let sync_entries t =
  Metrics.set t.g_entries (float_of_int (Hashtbl.length t.tbl));
  Metrics.set t.g_bytes (float_of_int t.total_bytes)

let find t ~uid ~fingerprint ~generation =
  match Hashtbl.find_opt t.tbl uid with
  | Some e when e.fingerprint = fingerprint && e.generation = generation ->
      Metrics.incr t.c_hits;
      Some e.result
  | Some _ | None ->
      Metrics.incr t.c_misses;
      None

let forget_bytes t uid =
  match Hashtbl.find_opt t.tbl uid with
  | Some e -> t.total_bytes <- t.total_bytes - e.bytes
  | None -> ()

let store t ~uid ~fingerprint ~generation result =
  forget_bytes t uid;
  let bytes = Fileset.byte_size result in
  t.total_bytes <- t.total_bytes + bytes;
  Hashtbl.replace t.tbl uid { fingerprint; generation; result; bytes };
  sync_entries t

let drop t ~uid =
  if Hashtbl.mem t.tbl uid then begin
    forget_bytes t uid;
    Hashtbl.remove t.tbl uid;
    Metrics.incr t.c_drops;
    sync_entries t
  end

let clear t =
  Metrics.incr ~by:(Hashtbl.length t.tbl) t.c_drops;
  Hashtbl.reset t.tbl;
  t.total_bytes <- 0;
  sync_entries t

let stats t =
  {
    hits = Metrics.count t.c_hits;
    misses = Metrics.count t.c_misses;
    entries = Hashtbl.length t.tbl;
    drops = Metrics.count t.c_drops;
    bytes = t.total_bytes;
  }

let reset_stats t =
  Metrics.reset_counter t.c_hits;
  Metrics.reset_counter t.c_misses;
  Metrics.reset_counter t.c_drops
