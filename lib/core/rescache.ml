module Fileset = Hac_bitset.Fileset

type entry = { fingerprint : string; generation : int; result : Fileset.t }

type stats = { hits : int; misses : int; entries : int; drops : int }

type t = {
  tbl : (int, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable drops : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0; drops = 0 }

let find t ~uid ~fingerprint ~generation =
  match Hashtbl.find_opt t.tbl uid with
  | Some e when e.fingerprint = fingerprint && e.generation = generation ->
      t.hits <- t.hits + 1;
      Some e.result
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let store t ~uid ~fingerprint ~generation result =
  Hashtbl.replace t.tbl uid { fingerprint; generation; result }

let drop t ~uid =
  if Hashtbl.mem t.tbl uid then begin
    Hashtbl.remove t.tbl uid;
    t.drops <- t.drops + 1
  end

let clear t =
  t.drops <- t.drops + Hashtbl.length t.tbl;
  Hashtbl.reset t.tbl

let stats t =
  { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.tbl; drops = t.drops }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.drops <- 0
