module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Fileset = Hac_bitset.Fileset
module Index = Hac_index.Index
module Search = Hac_index.Search
module Ast = Hac_query.Ast
module Depgraph = Hac_depgraph.Depgraph
module Namespace = Hac_remote.Namespace
module Mount_table = Hac_remote.Mount_table

type scope = {
  local : Fileset.t;
  remote : Link.target list;
  mount_uids : int list;
}

let subtree_docs (ctx : Ctx.t) path =
  let path = Vpath.normalize path in
  if path = Vpath.root then Index.universe ctx.index
  else Index.doc_ids_under ctx.index path

let mounts_under (ctx : Ctx.t) path =
  List.filter
    (fun uid ->
      match Uidmap.path_of_uid ctx.uids uid with
      | Some mpath -> Vpath.is_prefix ~prefix:path mpath
      | None -> false)
    (Mount_table.mount_points ctx.mounts)

let compute_scope (ctx : Ctx.t) uid =
  match Uidmap.path_of_uid ctx.uids uid with
  | None -> { local = Fileset.empty; remote = []; mount_uids = [] }
  | Some path -> (
      let mount_uids = mounts_under ctx path in
      match Ctx.semdir_of_uid ctx uid with
      | None -> { local = subtree_docs ctx path; remote = []; mount_uids }
      | Some sd ->
          (* The current query result (bitmap + remote entries) plus
             explicitly present links plus physical files of the subtree. *)
          let local = ref (Fileset.union sd.Semdir.transient_local (subtree_docs ctx path)) in
          let remote = ref [] in
          List.iter
            (fun r ->
              remote := Link.Remote { ns_id = r.Semdir.rr_ns; uri = r.Semdir.rr_uri } :: !remote)
            sd.Semdir.transient_remote;
          List.iter
            (fun l ->
              match l.Link.target with
              | Link.Local p -> (
                  match Index.doc_of_path ctx.index p with
                  | Some id -> local := Fileset.add !local id
                  | None -> ())
              | Link.Remote _ as r -> remote := r :: !remote)
            (Semdir.links_of_cls sd Link.Permanent);
          { local = !local; remote = List.rev !remote; mount_uids })

let provided_scope = compute_scope

(* One propagation pass computes each directory's provided scope at most
   once: [sync_from]/[sync_all] used to re-derive every scope for every
   resync (the dirref environment re-derives them again inside query
   evaluation).  Entries stay valid for the whole pass because directories
   are processed dependencies-first and the index does not change during a
   pass; the one exception — a directory whose own result just changed —
   drops its entry so dependents recompute it.

   A pass also owns the shared evaluation caches (a term-result memo and a
   bounded document content/token cache) and the hoisted evaluator; all
   three live exactly as long as the pass, which is the window during which
   the index is frozen — dropping them at pass end is the whole
   invalidation story. *)
type pass = {
  scopes : (int, scope) Hashtbl.t;
  memo : Search.term_memo option;
  cache : Search.doc_cache option;
  mutable ev : Search.evaluator option;  (* main-domain evaluator, built lazily *)
}

let fresh_pass (ctx : Ctx.t) =
  if ctx.pass_caches then
    {
      scopes = Hashtbl.create 16;
      memo = Some (Search.term_memo ());
      cache = Some (Search.doc_cache ());
      ev = None;
    }
  else { scopes = Hashtbl.create 16; memo = None; cache = None; ev = None }

(* Fold the pass caches' totals into the instance counters once, at pass
   end — during the pass, accounting stays inside the caches' own locks, so
   no shared [Instr] counter is touched from a worker domain. *)
let flush_pass (ctx : Ctx.t) pass =
  let i = ctx.instr in
  (match pass.memo with
  | Some m ->
      let s = Search.term_memo_stats m in
      Hac_obs.Metrics.incr ~by:s.Search.memo_hits i.Instr.memo_hits;
      Hac_obs.Metrics.incr ~by:s.Search.memo_misses i.Instr.memo_misses
  | None -> ());
  match pass.cache with
  | Some c ->
      let s = Search.doc_cache_stats c in
      Hac_obs.Metrics.incr ~by:s.Search.cache_hits i.Instr.doc_cache_hits;
      Hac_obs.Metrics.incr ~by:s.Search.cache_misses i.Instr.doc_cache_misses;
      Hac_obs.Metrics.incr ~by:s.Search.cache_uncached i.Instr.doc_cache_uncached
  | None -> ()

let scope_in pass ctx uid =
  match Hashtbl.find_opt pass.scopes uid with
  | Some s -> s
  | None ->
      let s = compute_scope ctx uid in
      Hashtbl.replace pass.scopes uid s;
      s

(* Read-only scope view for worker domains: serve memoized entries, compute
   misses without publishing them (the pass table is unsynchronized).  The
   pre-stage warms every entry a level's evaluations can read, so the
   fallback is a correctness net, not a hot path. *)
let scope_ro pass ctx uid =
  match Hashtbl.find_opt pass.scopes uid with
  | Some s -> s
  | None -> compute_scope ctx uid

let attr_docs ?within ?cache (ctx : Ctx.t) key value =
  match key with
  | "name" | "ext" | "path" ->
      (* Built-in attributes derive from the path alone; under a delta
         restriction only the delta's paths need testing. *)
      let base =
        match within with Some w -> w | None -> Index.universe ctx.index
      in
      Fileset.filter
        (fun id ->
          match Index.doc_path ctx.index id with
          | Some p -> Vpath.matches_builtin_attr ~key ~value p
          | None -> false)
        base
  | _ -> (
      (* Transducer-extracted attributes: block-coarse candidates from the
         index, verified by re-extracting from the candidate's content. *)
      match Index.transducer ctx.index with
      | None -> Fileset.empty
      | Some td ->
          let key = String.lowercase_ascii key and value = String.lowercase_ascii value in
          let read path =
            match cache with
            | Some c -> Search.cached_content c (Ctx.reader ctx) path
            | None -> Ctx.reader ctx path
          in
          let verify id =
            match Index.doc_path ctx.index id with
            | None -> false
            | Some path -> (
                match read path with
                | None -> false
                | Some content ->
                    List.exists
                      (fun (k, v) -> k = key && v = value)
                      (td.Hac_index.Transducer.extract ~path ~content))
          in
          Fileset.filter verify (Index.attr_docs ?within ctx.index key value))

(* Measured candidate counts for the planner.  With the CAS index on these
   are per-container cardinalities of exactly the partitions a lookup would
   touch (scoped by [?under] when the evaluation has a subtree scope);
   with it off they fall back to Glimpse posting-block upper bounds.  No
   candidate set is ever materialised, and — because [eval_query_par] calls
   this from worker domains — no metric, tracer or cache is touched here.
   Verification never widens a candidate set, so these are sound upper
   bounds for ordering conjunctions. *)
let term_cost ?under (ctx : Ctx.t) term =
  let universe_size () = Index.doc_count ctx.index in
  match term with
  | Ast.Word w -> Index.term_cost ?under ctx.index w
  | Ast.Phrase ws ->
      List.fold_left (fun acc w -> min acc (Index.term_cost ?under ctx.index w)) max_int ws
  | Ast.Approx _ -> universe_size () (* vocabulary scan: treat as expensive *)
  | Ast.Attr (("name" | "ext" | "path"), _) -> universe_size ()
  | Ast.Attr (k, v) -> Index.attr_cost ?under ctx.index k v
  | Ast.Regex r -> (
      match Hac_index.Regex.compile_result r with
      | Ok re when (not (Index.stemming ctx.index)) && Hac_index.Regex.required_word re <> None
        ->
          universe_size () / 2 (* literal-narrowed scan: cheaper than full *)
      | Ok _ | Error _ -> universe_size ())
  | Ast.Dirref (Ast.Ref_uid u) -> (
      match Ctx.semdir_of_uid ctx u with
      | Some sd -> Fileset.cardinal sd.Semdir.transient_local
      | None -> universe_size ())
  | Ast.Dirref (Ast.Ref_path _) -> universe_size ()

(* Build an evaluator over the pass caches.  [~shared:false] is the main
   domain's: dirref scopes go through [scope_in] and get published into the
   pass table.  [~shared:true] is for worker domains: same caches, but the
   read-only scope view, so the unsynchronized pass table is never written
   off the main domain. *)
let make_evaluator pass (ctx : Ctx.t) ~shared =
  let scope_of u =
    if shared then (scope_ro pass ctx u).local else (scope_in pass ctx u).local
  in
  let dirref ?within:_ = function
    | Ast.Ref_uid u -> scope_of u
    | Ast.Ref_path p -> (
        match Uidmap.uid_of_path ctx.uids p with
        | Some u -> scope_of u
        | None -> Fileset.empty)
  in
  let attr ?within k v = attr_docs ?within ?cache:pass.cache ctx k v in
  Search.evaluator ?memo:pass.memo ?cache:pass.cache ctx.index (Ctx.reader ctx) ~attr
    ~dirref

(* The pass's own (main-domain) evaluator, built on first use and reused by
   every sequential evaluation in the pass: the query environment's closures
   are hoisted out of the per-directory loop. *)
let evaluator_in pass ctx =
  match pass.ev with
  | Some ev -> ev
  | None ->
      let ev = make_evaluator pass ctx ~shared:false in
      pass.ev <- Some ev;
      ev

(* [?under] is the scope-pushdown hint: the (normalized, absolute) directory
   the final result will be intersected below.  It sharpens both the cost
   model (partition-scoped cardinalities) and candidate generation (the CAS
   index skips partitions that cannot intersect the scope) — sound only
   because the caller intersects with a subtree scope at or below it. *)
let eval_query_in pass (ctx : Ctx.t) ?restrict_to ?under q =
  let i = ctx.instr in
  Hac_obs.Trace.with_span i.Instr.tracer ~name:"query.eval" (fun () ->
      let report ~chosen ~naive ~terms:_ =
        Hac_obs.Metrics.incr i.Instr.planner_chains;
        if chosen < naive then begin
          Hac_obs.Metrics.incr i.Instr.planner_reordered;
          Hac_obs.Metrics.incr ~by:(naive - chosen) i.Instr.planner_cost_saved
        end;
        (match under with
        | Some _ -> Hac_obs.Metrics.incr i.Instr.planner_scoped_chains
        | None -> ())
      in
      let q =
        Hac_query.Planner.optimize ~report
          ~cost:(Hac_query.Planner.calibrated ~measured:(term_cost ?under ctx))
          q
      in
      let probe = Search.new_probe () in
      let result = Search.eval_with (evaluator_in pass ctx) ~probe ?restrict_to ?under q in
      Instr.flush_probe i probe;
      Hac_obs.Trace.set_attr_int i.Instr.tracer "terms" probe.Search.terms;
      Hac_obs.Trace.set_attr_int i.Instr.tracer "verified" probe.Search.docs_verified;
      result)

let eval_query (ctx : Ctx.t) ?restrict_to q =
  eval_query_in (fresh_pass ctx) ctx ?restrict_to q

(* -- worker-domain evaluation ---------------------------------------------

   Worker domains may not touch the tracer, the metrics registry, the result
   cache or the pass scope table — everything observable accumulates in a
   per-task [par_acc], merged on the main domain at the level barrier. *)

type par_acc = {
  acc_probe : Search.probe;
  mutable acc_chains : int;
  mutable acc_reordered : int;
  mutable acc_cost_saved : int;
  mutable acc_scoped : int;
}

let new_par_acc () =
  {
    acc_probe = Search.new_probe ();
    acc_chains = 0;
    acc_reordered = 0;
    acc_cost_saved = 0;
    acc_scoped = 0;
  }

let merge_par_acc (ctx : Ctx.t) acc =
  let i = ctx.instr in
  Instr.flush_probe i acc.acc_probe;
  Hac_obs.Metrics.incr ~by:acc.acc_chains i.Instr.planner_chains;
  Hac_obs.Metrics.incr ~by:acc.acc_reordered i.Instr.planner_reordered;
  Hac_obs.Metrics.incr ~by:acc.acc_cost_saved i.Instr.planner_cost_saved;
  Hac_obs.Metrics.incr ~by:acc.acc_scoped i.Instr.planner_scoped_chains

let eval_query_par pass (ctx : Ctx.t) acc ?restrict_to ?under q =
  let report ~chosen ~naive ~terms:_ =
    acc.acc_chains <- acc.acc_chains + 1;
    if chosen < naive then begin
      acc.acc_reordered <- acc.acc_reordered + 1;
      acc.acc_cost_saved <- acc.acc_cost_saved + (naive - chosen)
    end;
    match under with Some _ -> acc.acc_scoped <- acc.acc_scoped + 1 | None -> ()
  in
  let q =
    Hac_query.Planner.optimize ~report
      ~cost:(Hac_query.Planner.calibrated ~measured:(term_cost ?under ctx))
      q
  in
  let ev = make_evaluator pass ctx ~shared:true in
  Search.eval_with ev ~probe:acc.acc_probe ?restrict_to ?under q

(* -- metadata persistence --------------------------------------------------

   The paper's HAC stores each directory's query, query-result (as an N/8
   byte bitmap) and link sets on disk; those writes are a real part of its
   measured overhead.  We persist the same information through the VFS into
   a hidden metadata area. *)

let meta_root = "/.hac"

(* Each structure lives in its own file, as the paper stores them as
   separate on-disk objects: the query, the link sets, the prohibitions and
   the query-result bitmap. *)
let meta_files uid =
  List.map
    (fun suffix -> Printf.sprintf "%s/sd-%d.%s" meta_root uid suffix)
    [ "query"; "links"; "proh"; "result" ]

let persist_semdir (ctx : Ctx.t) (sd : Semdir.t) =
  (* Directory references are rendered through the global map: stored
     queries must survive into a future instance whose uids differ. *)
  let query_data =
    Ast.to_string ~path_of_uid:(Uidmap.path_of_uid ctx.uids) sd.Semdir.query ^ "\n"
  in
  let links_data =
    let b = Buffer.create 128 in
    List.iter
      (fun l ->
        Buffer.add_string b
          (Printf.sprintf "%s %s %s\n" (Link.cls_name l.Link.cls) l.Link.name
             (Link.symlink_value l.Link.target)))
      (Semdir.all_links sd);
    List.iter
      (fun r -> Buffer.add_string b ("remote " ^ r.Semdir.rr_ns ^ " " ^ r.Semdir.rr_uri ^ "\n"))
      sd.Semdir.transient_remote;
    Buffer.contents b
  in
  let proh_data = String.concat "\n" (Semdir.prohibited_keys sd) in
  (* The query-result bitmap, ceil(N/8) bytes for N indexed files. *)
  let result_data =
    let bitmap = Bytes.make ((Index.doc_count ctx.index + 7) / 8) '\000' in
    Hac_bitset.Fileset.iter
      (fun id ->
        if id / 8 < Bytes.length bitmap then begin
          let byte = Char.code (Bytes.get bitmap (id / 8)) in
          Bytes.set bitmap (id / 8) (Char.chr (byte lor (1 lsl (id mod 8))))
        end)
      sd.Semdir.transient_local;
    Bytes.to_string bitmap
  in
  Ctx.with_maintenance ctx (fun () ->
      if not (Fs.is_dir ctx.fs meta_root) then Fs.mkdir_p ctx.fs meta_root;
      (* Sealed whole, so a torn write leaves a detectably-damaged file
         rather than a silently truncated query or link set. *)
      List.iter2 (Fs.write_file ctx.fs) (meta_files sd.Semdir.uid)
        (List.map Seal.seal_blob [ query_data; links_data; proh_data; result_data ]))

let unpersist_semdir (ctx : Ctx.t) uid =
  Ctx.with_maintenance ctx (fun () ->
      List.iter
        (fun f -> if Fs.lexists ctx.fs f then Fs.unlink ctx.fs f)
        (meta_files uid))

(* -- query rendering for remote namespaces ------------------------------- *)

let rec strip_dirrefs = function
  | Ast.Term (Ast.Dirref _) ->
      (* A remote document is never a member of a local directory. *)
      Ast.Not Ast.All
  | Ast.Term _ as q -> q
  | Ast.All -> Ast.All
  | Ast.Not a -> Ast.Not (strip_dirrefs a)
  | Ast.And (a, b) -> Ast.And (strip_dirrefs a, strip_dirrefs b)
  | Ast.Or (a, b) -> Ast.Or (strip_dirrefs a, strip_dirrefs b)

let max_keyword_renders = 16

(* Conjunctive keyword sets, one per OR branch.  Constraints a keyword
   engine cannot express (NOT, attrs, the match-all star) render as the
   empty set, which means "enumerate"; local verification then applies the
   precise query. *)
let rec keyword_sets = function
  | Ast.Term (Ast.Word w) -> [ [ w ] ]
  | Ast.Term (Ast.Phrase ws) -> [ ws ]
  | Ast.Term (Ast.Approx (w, _)) -> [ [ w ] ]
  | Ast.Term (Ast.Attr _) | Ast.Term (Ast.Regex _) | Ast.Term (Ast.Dirref _) | Ast.All
  | Ast.Not _ ->
      [ [] ]
  | Ast.Or (a, b) ->
      let sets = keyword_sets a @ keyword_sets b in
      if List.length sets > max_keyword_renders then [ [] ] else sets
  | Ast.And (a, b) ->
      let sa = keyword_sets a and sb = keyword_sets b in
      let crossed = List.concat_map (fun x -> List.map (fun y -> x @ y) sb) sa in
      if List.length crossed > max_keyword_renders then [ [] ] else crossed

let render_for lang q =
  match lang with
  | Namespace.Hac_syntax -> [ Ast.to_string (strip_dirrefs q) ]
  | Namespace.Keywords ->
      keyword_sets q
      |> List.map (fun ws -> String.concat " " (List.sort_uniq compare ws))
      |> List.sort_uniq compare

(* -- remote evaluation ---------------------------------------------------- *)

let failure_reason = function
  | Namespace.Unavailable { reason; _ } -> reason
  | e -> Printexc.to_string e

(* The ns_id parsed out of a uri is a heuristic (uri schemes differ between
   namespaces); ask the named namespace first, then fall back to every
   registered one.  Namespaces are remote and may fail: any exception from a
   provider is reported through [on_failure] and treated as "no content" —
   callers decide whether that means a miss or a degraded re-serve. *)
let fetch_remote ?(on_failure = fun _ _ -> ()) (ctx : Ctx.t) ~ns_id ~uri =
  let try_ns ns =
    match ns.Namespace.fetch uri with
    | r -> r
    | exception e ->
        on_failure ns.Namespace.ns_id (failure_reason e);
        None
  in
  let direct = Option.bind (Hashtbl.find_opt ctx.namespaces ns_id) try_ns in
  match direct with
  | Some _ as r -> r
  | None ->
      Hashtbl.fold
        (fun _ ns acc -> match acc with Some _ -> acc | None -> try_ns ns)
        ctx.namespaces None

let remote_matches ?on_failure (ctx : Ctx.t) q ~name ~ns_id ~uri =
  match fetch_remote ?on_failure ctx ~ns_id ~uri with
  | Some content ->
      Qmatch.matches ~stem:(Index.stemming ctx.index) q ~name ~content
  | None -> false

(* Entries a semantic directory should import from the mount points visible
   in its scope: query each namespace in its own language, then verify each
   answer locally against the full query.  Results carry the entry's display
   name, used as the symbolic link name. *)
let mount_results ?(on_failure = fun _ _ -> ()) (ctx : Ctx.t) q mount_uids =
  let results = ref [] in
  let seen = Hashtbl.create 16 in
  let consider ns (e : Namespace.entry) =
    let key = e.uri in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      let keep =
        match ns.Namespace.fetch e.uri with
        | Some content ->
            Qmatch.matches ~stem:(Index.stemming ctx.index) q ~name:e.name ~content
        | None ->
            (* Unfetchable entries are kept only when the namespace itself
               evaluated the full query. *)
            ns.Namespace.lang = Namespace.Hac_syntax
      in
      if keep then
        results :=
          (Link.Remote { ns_id = ns.Namespace.ns_id; uri = e.uri }, e.name) :: !results
    end
  in
  List.iter
    (fun muid ->
      List.iter
        (fun ns ->
          (* One failing namespace must not poison the others at this (or
             any later) mount point: report it and move on.  Whatever it
             answered before failing is kept. *)
          match
            List.iter
              (fun qs ->
                let entries =
                  if qs = "" then ns.Namespace.list_all () else ns.Namespace.search qs
                in
                List.iter (consider ns) entries)
              (render_for ns.Namespace.lang q)
          with
          | () -> ()
          | exception e -> on_failure ns.Namespace.ns_id (failure_reason e))
        (Mount_table.mounted ctx.mounts ~uid:muid))
    mount_uids;
  List.rev !results

(* -- the scope-consistency algorithm (section 2.3) ------------------------ *)

let parent_uid (ctx : Ctx.t) uid =
  if uid = Uidmap.root_uid then None
  else
    match Uidmap.path_of_uid ctx.uids uid with
    | None -> None
    | Some path -> Uidmap.uid_of_path ctx.uids (Vpath.dirname path)

let recompute_deps (ctx : Ctx.t) (sd : Semdir.t) =
  let parent = Option.to_list (parent_uid ctx sd.Semdir.uid) in
  Depgraph.set_deps ctx.deps sd.Semdir.uid (parent @ Ast.dir_uids sd.Semdir.query)

(* Expand the stored transient result into physical symbolic links.  Called
   lazily on first access through HAC, and by [resync_dir] to keep an
   already-materialised directory consistent. *)
let create_transient_link (ctx : Ctx.t) (sd : Semdir.t) ~path ~target ~name_hint =
  let taken name = Fs.lexists ctx.fs (Vpath.join path name) in
  let name =
    match name_hint with
    | Some n when Vpath.valid_name n && not (taken n) -> n
    | Some _ | None -> Semdir.fresh_link_name sd ~taken target
  in
  Fs.symlink ctx.fs ~target:(Link.symlink_value target) ~link:(Vpath.join path name);
  Semdir.add_link sd { Link.name; target; cls = Link.Transient }

let materialize (ctx : Ctx.t) (sd : Semdir.t) =
  if not sd.Semdir.materialized then begin
    match Uidmap.path_of_uid ctx.uids sd.Semdir.uid with
    | None -> ()
    | Some path ->
        Ctx.with_maintenance ctx (fun () ->
            Fileset.iter
              (fun id ->
                match Index.doc_path ctx.index id with
                | Some p ->
                    create_transient_link ctx sd ~path ~target:(Link.Local p) ~name_hint:None
                | None -> ())
              sd.Semdir.transient_local;
            List.iter
              (fun r ->
                create_transient_link ctx sd ~path
                  ~target:(Link.Remote { ns_id = r.Semdir.rr_ns; uri = r.Semdir.rr_uri })
                  ~name_hint:(Some r.Semdir.rr_name))
              sd.Semdir.transient_remote);
        sd.Semdir.materialized <- true
  end

let exclusion_filter (ctx : Ctx.t) (sd : Semdir.t) ~path set =
  let prohibited key = Semdir.is_prohibited sd key in
  let permanent_key key =
    List.exists
      (fun l -> Link.target_key l.Link.target = key)
      (Semdir.links_of_cls sd Link.Permanent)
  in
  Fileset.filter
    (fun id ->
      match Index.doc_path ctx.index id with
      | Some p ->
          (not (Vpath.is_prefix ~prefix:path p))
          && (not (prohibited p))
          && not (permanent_key p)
      | None -> false)
    set

(* The cache key for a directory's local result.  The printed uid-form query
   ([{#n}] for dirrefs) is stable across renames of referenced directories,
   and exact string comparison cannot collide the way a structural hash
   could. *)
let fingerprint (sd : Semdir.t) = Ast.to_string sd.Semdir.query

(* The scope-pushdown hint for a directory's evaluation: the parent's path,
   but only when the parent is a {e plain} directory.  Then the parent
   scope's [local] is exactly [subtree_docs] of that path, so the
   [Fileset.inter _ pscope.local] in [resync_dir_in] discharges the
   soundness obligation of [?under] — every kept document lives under the
   hint.  A semdir parent's scope also carries its own query result and
   permanent links, which are not confined to its subtree, so no hint. *)
let under_hint (ctx : Ctx.t) uid =
  match parent_uid ctx uid with
  | None -> None
  | Some p -> (
      match (Ctx.semdir_of_uid ctx p, Uidmap.path_of_uid ctx.uids p) with
      | None, Some path -> Some (Vpath.normalize path)
      | _ -> None)

(* [?known_local] short-circuits steps 1–2 with a precomputed local result
   (a parallel level already evaluated and exclusion-filtered it, or the
   pre-stage found it in the result cache); everything that writes — the
   remote part, link patching, generation bumps, persistence — still runs
   here, on the main domain, exactly as in the sequential engine. *)
let resync_dir_in ?known_local pass (ctx : Ctx.t) uid =
  match (Ctx.semdir_of_uid ctx uid, Uidmap.path_of_uid ctx.uids uid) with
  | None, _ | _, None -> false
  | Some sd, Some path ->
      let pscope =
        match parent_uid ctx uid with
        | Some p -> scope_in pass ctx p
        | None -> { local = Fileset.empty; remote = []; mount_uids = [] }
      in
      let prohibited key = Semdir.is_prohibited sd key in
      let permanent_key key =
        List.exists
          (fun l -> Link.target_key l.Link.target = key)
          (Semdir.links_of_cls sd Link.Permanent)
      in
      (* 1–2. The local result: evaluate the query over the parent's scope,
            then drop files physically inside this directory (already "in"
            it), the prohibited ones, and the permanent ones (section 2.3:
            HAC never touches those sets).  This set is the paper's
            per-directory result bitmap — and exactly what the result cache
            memoizes: on a generation-fresh hit both the evaluation and the
            exclusion filtering are skipped. *)
      let fp = fingerprint sd in
      let new_local =
        match known_local with
        | Some r -> r
        | None -> (
            match
              Rescache.find ctx.rescache ~uid ~fingerprint:fp
                ~generation:ctx.scope_generation
            with
            | Some r -> r
            | None ->
                let matched =
                  Fileset.inter
                    (eval_query_in pass ctx ?under:(under_hint ctx uid) sd.Semdir.query)
                    pscope.local
                in
                exclusion_filter ctx sd ~path matched)
      in
      (* 3. New remote result: inherited parent links that match, plus fresh
            results from visible mount points; same exclusions.  Namespace
            failures are collected rather than propagated — a re-evaluation
            must never be broken by a flaky remote.  With no remote scope at
            all (no inherited remote links, no visible mounts) the result is
            empty by construction — no namespace is consulted, so no failure
            and no stale re-serve can occur. *)
      let new_remote =
        if pscope.remote = [] && pscope.mount_uids = [] then []
        else begin
          let failed = Hashtbl.create 4 in
          let note_failure ns_id reason =
            ctx.remote_failures <- ctx.remote_failures + 1;
            if not (Hashtbl.mem failed ns_id) then Hashtbl.replace failed ns_id reason
          in
          let remote_acc = ref [] in
          let seen_remote = Hashtbl.create 8 in
          let consider_remote ~stale ~ns_id ~uri ~name =
            if
              (not (Hashtbl.mem seen_remote uri))
              && (not (prohibited uri))
              && not (permanent_key uri)
            then begin
              Hashtbl.replace seen_remote uri ();
              if stale then ctx.stale_serves <- ctx.stale_serves + 1;
              remote_acc :=
                { Semdir.rr_ns = ns_id; rr_uri = uri; rr_name = name; rr_stale = stale }
                :: !remote_acc
            end
          in
          List.iter
            (fun target ->
              match target with
              | Link.Remote { ns_id; uri } ->
                  if
                    remote_matches ~on_failure:note_failure ctx sd.Semdir.query
                      ~name:(Link.display_name target) ~ns_id ~uri
                  then
                    consider_remote ~stale:false ~ns_id ~uri ~name:(Link.display_name target)
              | Link.Local _ -> ())
            pscope.remote;
          List.iter
            (fun (target, name) ->
              match target with
              | Link.Remote { ns_id; uri } -> consider_remote ~stale:false ~ns_id ~uri ~name
              | Link.Local _ -> ())
            (mount_results ~on_failure:note_failure ctx sd.Semdir.query pscope.mount_uids);
          (* Graceful degradation: a namespace that failed this round keeps
             its last-good entries — re-served from the previous result and
             marked stale — instead of silently vanishing from the
             directory.  Fresh answers (e.g. inherited through the parent)
             win the dedup. *)
          if Hashtbl.length failed > 0 then
            List.iter
              (fun r ->
                if Hashtbl.mem failed r.Semdir.rr_ns then
                  consider_remote ~stale:true ~ns_id:r.Semdir.rr_ns ~uri:r.Semdir.rr_uri
                    ~name:r.Semdir.rr_name)
              sd.Semdir.transient_remote;
          List.rev !remote_acc
        end
      in
      let changed =
        (not (Fileset.equal new_local sd.Semdir.transient_local))
        || new_remote <> sd.Semdir.transient_remote
      in
      Hac_obs.Metrics.incr ctx.instr.Instr.sync_dirs;
      if changed then Hac_obs.Metrics.incr ctx.instr.Instr.sync_changed;
      sd.Semdir.transient_local <- new_local;
      sd.Semdir.transient_remote <- new_remote;
      (* 4. A directory whose links are already expanded must stay
            physically consistent: diff and patch its transient symlinks. *)
      if sd.Semdir.materialized then begin
        let desired = Hashtbl.create 32 in
        Fileset.iter
          (fun id ->
            match Index.doc_path ctx.index id with
            | Some p -> Hashtbl.replace desired p (Link.Local p, None)
            | None -> ())
          new_local;
        List.iter
          (fun r ->
            Hashtbl.replace desired r.Semdir.rr_uri
              (Link.Remote { ns_id = r.Semdir.rr_ns; uri = r.Semdir.rr_uri }, Some r.Semdir.rr_name))
          new_remote;
        Ctx.with_maintenance ctx (fun () ->
            List.iter
              (fun l ->
                let key = Link.target_key l.Link.target in
                if Hashtbl.mem desired key then Hashtbl.remove desired key
                else begin
                  ignore (Semdir.remove_link sd l.Link.name);
                  let lpath = Vpath.join path l.Link.name in
                  if Fs.is_symlink ctx.fs lpath then Fs.unlink ctx.fs lpath
                end)
              (Semdir.links_of_cls sd Link.Transient);
            Hashtbl.iter
              (fun _key (target, name_hint) ->
                create_transient_link ctx sd ~path ~target ~name_hint)
              desired)
      end;
      if changed then begin
        (* Any later directory in this pass evaluating against stale state
           would be wrong: its cached result and this directory's memoized
           scope both reflect the pre-change world. *)
        Ctx.bump_generation ctx;
        Hashtbl.remove pass.scopes uid
      end;
      Rescache.store ctx.rescache ~uid ~fingerprint:fp ~generation:ctx.scope_generation
        new_local;
      let first_sync = sd.Semdir.last_synced = 0 in
      ctx.sync_stamp <- ctx.sync_stamp + 1;
      sd.Semdir.last_synced <- ctx.sync_stamp;
      (* The paper persists after every re-evaluation; nothing is lost by
         skipping the write when neither the result nor the link/prohibition
         metadata moved since the last one. *)
      if changed || sd.Semdir.meta_dirty || first_sync then begin
        persist_semdir ctx sd;
        sd.Semdir.meta_dirty <- false
      end;
      changed

let resync_dir (ctx : Ctx.t) uid =
  let pass = fresh_pass ctx in
  let r = resync_dir_in pass ctx uid in
  flush_pass ctx pass;
  r

(* -- parallel level scheduling --------------------------------------------

   The scope-consistency algorithm orders re-evaluation only along
   dependency edges; directories in the same dependency level (an antichain
   of {!Depgraph.levels}) are mutually independent, so their expensive,
   read-only query evaluations can run concurrently.  Each level runs in
   three phases:

   1. {e pre-stage} (main domain): resolve each semdir, warm every scope its
      evaluation can read into the pass table, consult the result cache;
   2. {e evaluate} (domain pool): query evaluation + exclusion filtering for
      the cache misses, against the frozen index and the warmed read-only
      scope view, accumulating observability into per-task [par_acc]s;
   3. {e apply} (main domain, level order): everything that writes — remote
      results, link patching, generation bumps, result-cache stores,
      metadata persistence — through the same [resync_dir_in] the
      sequential engine uses, seeded with the precomputed local result.

   Within a level no directory depends on another, so apply order cannot
   change any level result, and the final state is byte-identical to the
   sequential pass (see docs/parallelism.md for the full argument and
   test/test_parallel.ml for the differential check). *)

type 'a level_job = Lskip | Lhit of Fileset.t | Leval of 'a

let level_prestage pass (ctx : Ctx.t) ~use_rescache uid =
  match (Ctx.semdir_of_uid ctx uid, Uidmap.path_of_uid ctx.uids uid) with
  | None, _ | _, None -> Lskip
  | Some sd, Some path ->
      (* Warm every scope this directory's evaluation reads (its parent and
         its dirref dependencies), so worker domains only ever read the
         pass table. *)
      List.iter (fun d -> ignore (scope_in pass ctx d)) (Depgraph.deps ctx.deps uid);
      let pscope =
        match parent_uid ctx uid with
        | Some p -> scope_in pass ctx p
        | None -> { local = Fileset.empty; remote = []; mount_uids = [] }
      in
      if use_rescache then
        match
          Rescache.find ctx.rescache ~uid ~fingerprint:(fingerprint sd)
            ~generation:ctx.scope_generation
        with
        | Some r -> Lhit r
        | None -> Leval (sd, path, pscope, under_hint ctx uid)
      else Leval (sd, path, pscope, under_hint ctx uid)

let note_level (ctx : Ctx.t) ~tasks =
  Hac_obs.Metrics.incr ctx.instr.Instr.par_levels;
  Hac_obs.Metrics.incr ~by:tasks ctx.instr.Instr.par_tasks

(* One level of a full pass: evaluate all cache-missing directories on the
   pool, then apply every directory of the level in UID order. *)
let run_level_full pool pass (ctx : Ctx.t) level =
  let jobs = List.map (fun uid -> (uid, level_prestage pass ctx ~use_rescache:true uid)) level in
  let tasks =
    Array.of_list
      (List.filter_map
         (function
           | uid, Leval (sd, path, pscope, under) -> Some (uid, sd, path, pscope, under)
           | _, (Lskip | Lhit _) -> None)
         jobs)
  in
  let results =
    Hac_par.Pool.map pool
      (fun (uid, sd, path, pscope, under) ->
        let acc = new_par_acc () in
        let matched =
          Fileset.inter (eval_query_par pass ctx acc ?under sd.Semdir.query) pscope.local
        in
        (uid, exclusion_filter ctx sd ~path matched, acc))
      tasks
  in
  (* Level barrier: merge the per-task accumulators on the main domain. *)
  let computed = Hashtbl.create (max 16 (Array.length tasks)) in
  Array.iter
    (fun (uid, local, acc) ->
      Hashtbl.replace computed uid local;
      merge_par_acc ctx acc)
    results;
  note_level ctx ~tasks:(Array.length tasks);
  List.iter
    (fun (uid, job) ->
      let known_local =
        match job with
        | Lskip -> None
        | Lhit r -> Some r
        | Leval _ -> Some (Hashtbl.find computed uid)
      in
      ignore (resync_dir_in ?known_local pass ctx uid))
    jobs

let run_levels_full pool pass ctx levels =
  Hac_obs.Metrics.set ctx.Ctx.instr.Instr.par_domains
    (float_of_int (Hac_par.Pool.size pool));
  List.iter (fun level -> run_level_full pool pass ctx level) levels

let sync_from ?pool (ctx : Ctx.t) uid =
  let i = ctx.instr in
  Hac_obs.Trace.with_span i.Instr.tracer ~name:"sync.from" (fun () ->
      Hac_obs.Metrics.incr i.Instr.sync_from;
      let pass = fresh_pass ctx in
      ignore (resync_dir_in pass ctx uid);
      let affected = Depgraph.affected ctx.deps uid in
      (match pool with
      | Some p when Hac_par.Pool.size p > 1 ->
          run_levels_full p pass ctx (Depgraph.levels_of ctx.deps affected)
      | Some _ | None -> List.iter (fun u -> ignore (resync_dir_in pass ctx u)) affected);
      flush_pass ctx pass;
      Hac_obs.Metrics.observe i.Instr.pass_dirs (float_of_int (1 + List.length affected));
      Hac_obs.Trace.set_attr_int i.Instr.tracer "dirs" (1 + List.length affected))

let sync_all ?pool (ctx : Ctx.t) =
  let i = ctx.instr in
  Hac_obs.Trace.with_span i.Instr.tracer ~name:"sync.full" (fun () ->
      Hac_obs.Metrics.incr i.Instr.sync_full;
      let pass = fresh_pass ctx in
      let n_dirs =
        match pool with
        | Some p when Hac_par.Pool.size p > 1 ->
            let levels = Depgraph.levels ctx.deps in
            run_levels_full p pass ctx levels;
            List.fold_left (fun acc l -> acc + List.length l) 0 levels
        | Some _ | None ->
            let dirs = Depgraph.topo_all ctx.deps in
            List.iter (fun u -> ignore (resync_dir_in pass ctx u)) dirs;
            List.length dirs
      in
      flush_pass ctx pass;
      Hac_obs.Metrics.observe i.Instr.pass_dirs (float_of_int n_dirs);
      Hac_obs.Trace.set_attr_int i.Instr.tracer "dirs" n_dirs)

(* -- data consistency (section 2.4) --------------------------------------- *)

type delta = { touched : Fileset.t; removed : Fileset.t }

let empty_delta = { touched = Fileset.empty; removed = Fileset.empty }

let reindex_with_delta (ctx : Ctx.t) ?under () =
  let i = ctx.instr in
  Hac_obs.Trace.with_span i.Instr.tracer ~name:"sync.reindex" (fun () ->
  let in_scope path =
    match under with
    | None -> true
    | Some prefix -> Vpath.is_prefix ~prefix path
  in
  let paths = Hashtbl.fold (fun p () acc -> if in_scope p then p :: acc else acc) ctx.dirty [] in
  (* The CBA mechanism reads files like any client of the library: each
     access is interposed (global-map lookup) and goes through an open
     file descriptor — the paper's Table 3 time overhead. *)
  let fds = Hac_vfs.Fd_table.create ctx.fs in
  let read_interposed path =
    (match Uidmap.uid_of_path ctx.uids (Vpath.dirname path) with
    | Some uid -> ignore (Ctx.semdir_of_uid ctx uid : Semdir.t option)
    | None -> ());
    let fd = Hac_vfs.Fd_table.openfile fds Hac_vfs.Fd_table.Read_only path in
    let content = Hac_vfs.Fd_table.read_all fds fd in
    Hac_vfs.Fd_table.close fds fd;
    content
  in
  let touched = ref Fileset.empty in
  let removed = ref Fileset.empty in
  let forget path =
    (match Index.doc_of_path ctx.index path with
    | Some id ->
        removed := Fileset.add !removed id;
        Option.iter (fun s -> Hac_store.Store.forget_doc s id) ctx.store
    | None -> ());
    Index.remove_path ctx.index path
  in
  List.iter
    (fun path ->
      Hashtbl.remove ctx.dirty path;
      if Fs.is_file ctx.fs path then
        match read_interposed path with
        | content ->
            let id = Index.update_document ctx.index ~path ~content in
            touched := Fileset.add !touched id;
            (* The settled body becomes the block store's copy — from here
               until the path dirties again, verification reads serve from
               the cache instead of the tree.  Maintenance mode: the block
               put's own mkdir/write/rename must not echo back into the
               event stream as user activity (and into the journal). *)
            Option.iter
              (fun s ->
                Ctx.with_maintenance ctx (fun () -> Hac_store.Store.put_doc s id content))
              ctx.store
        | exception Hac_vfs.Errno.Error (Hac_vfs.Errno.EACCES, _) ->
            (* The current user may not read it, so it cannot be indexed
               under their credentials (security borrowed from the OS). *)
            forget path
      else forget path)
    paths;
  (* Lazy updates leave stale block bits behind (Glimpse-style); once a
     third of the document slots are dead weight, compact. *)
  if Index.stale_ratio ctx.index > 0.33 && Index.doc_count ctx.index > 0 then begin
    Hac_obs.Metrics.incr i.Instr.index_rebuilds;
    let live_before = Index.doc_count ctx.index in
    Index.rebuild ctx.index (fun id ->
        Option.bind (Index.doc_path ctx.index id) (fun p ->
            match read_interposed p with
            | content -> Some content
            | exception Hac_vfs.Errno.Error _ -> None));
    (* Rebuild drops documents whose content became unreadable without any
       event (e.g. a permission change); such removals are invisible to the
       delta, so only a full re-evaluation is safe. *)
    if Index.doc_count ctx.index <> live_before then Ctx.force_full_sync ctx
  end;
  ctx.ops_since_reindex <- 0;
  if paths <> [] then Ctx.bump_generation ctx;
  Hac_obs.Metrics.incr ~by:(List.length paths) i.Instr.reindex_files;
  Hac_obs.Trace.set_attr_int i.Instr.tracer "files" (List.length paths);
  (List.length paths, { touched = !touched; removed = !removed }))

let reindex (ctx : Ctx.t) ?under () = fst (reindex_with_delta ctx ?under ())

(* -- incremental scope maintenance ----------------------------------------

   [sync_all] after a k-file change re-evaluates every query over every
   scope: O(all-docs × all-dirs) content verifications.  [sync_delta]
   exploits what the reindex just learned.  For a content-only change the
   membership of every document {e outside} the delta is unchanged in every
   directory (word/phrase/attr/regex terms depend on the document's own
   content and path; dirref terms on scopes whose non-delta membership is
   itself unchanged, inductively, dependencies-first).  So each directory
   only needs the query verdict on delta documents inside its scope:

     new = (old \ delta) ∪ {d ∈ touched ∩ scope(parent) | d ⊨ query} \ excl

   evaluated with {!Search.eval}'s [?restrict_to] so candidate expansion and
   verification never leave the delta — O(k × affected-dirs).

   Structural events (renames, link edits, mounts, prohibition changes,
   query edits) change membership outside any reindex delta; they set
   {!Ctx.t.needs_full_sync} and the next [sync_delta] falls back to a full
   [sync_all].  That fallback is also the property-test oracle: both paths
   must reach the same transient-link fixpoint. *)

(* [?known_adds] plays the same role as [resync_dir_in]'s [?known_local]: a
   parallel level already evaluated the restricted query and
   exclusion-filtered the additions, so only the (sequential) application
   remains. *)
let resync_dir_delta ?known_adds pass (ctx : Ctx.t) ~touched ~removed uid =
  match (Ctx.semdir_of_uid ctx uid, Uidmap.path_of_uid ctx.uids uid) with
  | None, _ | _, None -> ()
  | Some sd, Some path ->
      let pscope =
        match parent_uid ctx uid with
        | Some p -> scope_in pass ctx p
        | None -> { local = Fileset.empty; remote = []; mount_uids = [] }
      in
      let delta_all = Fileset.union touched removed in
      (* Docs whose verdict must be (re)computed, and current members whose
         verdict may have been lost (dropped from the parent scope, or from
         the index altogether). *)
      let candidates = Fileset.inter touched pscope.local in
      let stale = Fileset.inter delta_all sd.Semdir.transient_local in
      if not (Fileset.is_empty candidates && Fileset.is_empty stale) then begin
        Hac_obs.Metrics.incr ctx.instr.Instr.sync_dirs;
        let adds =
          match known_adds with
          | Some a -> a
          | None ->
              let matched =
                Fileset.inter
                  (eval_query_in pass ctx ~restrict_to:candidates sd.Semdir.query)
                  candidates
              in
              exclusion_filter ctx sd ~path matched
        in
        let old_local = sd.Semdir.transient_local in
        let new_local = Fileset.union adds (Fileset.diff old_local delta_all) in
        let changed = not (Fileset.equal new_local old_local) in
        if changed then Hac_obs.Metrics.incr ctx.instr.Instr.sync_changed;
        if changed then begin
          sd.Semdir.transient_local <- new_local;
          if sd.Semdir.materialized then
            Ctx.with_maintenance ctx (fun () ->
                (* Drop transient links whose target left the result or the
                   index; only delta documents can be affected, but removed
                   documents no longer map back to an id, so walk the links
                   and keep exactly those still in the result. *)
                List.iter
                  (fun l ->
                    match l.Link.target with
                    | Link.Local p ->
                        let keep =
                          match Index.doc_of_path ctx.index p with
                          | Some id -> Fileset.mem new_local id
                          | None -> false
                        in
                        if not keep then begin
                          ignore (Semdir.remove_link sd l.Link.name);
                          let lpath = Vpath.join path l.Link.name in
                          if Fs.is_symlink ctx.fs lpath then Fs.unlink ctx.fs lpath
                        end
                    | Link.Remote _ -> ())
                  (Semdir.links_of_cls sd Link.Transient);
                Fileset.iter
                  (fun id ->
                    match Index.doc_path ctx.index id with
                    | Some p ->
                        if Semdir.link_by_target sd (Link.Local p) = None then
                          create_transient_link ctx sd ~path ~target:(Link.Local p)
                            ~name_hint:None
                    | None -> ())
                  adds);
          Ctx.bump_generation ctx;
          Hashtbl.remove pass.scopes uid
        end;
        ctx.sync_stamp <- ctx.sync_stamp + 1;
        sd.Semdir.last_synced <- ctx.sync_stamp;
        if changed || sd.Semdir.meta_dirty then begin
          persist_semdir ctx sd;
          sd.Semdir.meta_dirty <- false
        end
      end

(* One level of a delta pass.  Only directories whose parent scope actually
   intersects the touched set carry an evaluation worth farming out; the
   rest (including the pure-removal case) apply inline — their work is a
   couple of set operations. *)
let run_level_delta pool pass (ctx : Ctx.t) ~touched ~removed level =
  let jobs =
    List.map
      (fun uid ->
        match level_prestage pass ctx ~use_rescache:false uid with
        | Lskip | Lhit _ -> (uid, Lskip)
        | Leval (sd, path, pscope, _under) ->
            (* Delta evaluations are already restricted to the touched set;
               the partition hint would buy nothing on top. *)
            let candidates = Fileset.inter touched pscope.local in
            if Fileset.is_empty candidates then (uid, Lskip)
            else (uid, Leval (sd, path, candidates)))
      level
  in
  let tasks =
    Array.of_list
      (List.filter_map
         (function
           | uid, Leval (sd, path, candidates) -> Some (uid, sd, path, candidates)
           | _, (Lskip | Lhit _) -> None)
         jobs)
  in
  let results =
    Hac_par.Pool.map pool
      (fun (uid, sd, path, candidates) ->
        let acc = new_par_acc () in
        let matched =
          Fileset.inter
            (eval_query_par pass ctx acc ~restrict_to:candidates sd.Semdir.query)
            candidates
        in
        (uid, exclusion_filter ctx sd ~path matched, acc))
      tasks
  in
  let computed = Hashtbl.create (max 16 (Array.length tasks)) in
  Array.iter
    (fun (uid, adds, acc) ->
      Hashtbl.replace computed uid adds;
      merge_par_acc ctx acc)
    results;
  note_level ctx ~tasks:(Array.length tasks);
  List.iter
    (fun (uid, job) ->
      let known_adds =
        match job with Leval _ -> Some (Hashtbl.find computed uid) | Lskip | Lhit _ -> None
      in
      resync_dir_delta ?known_adds pass ctx ~touched ~removed uid)
    jobs

let sync_delta ?pool (ctx : Ctx.t) delta =
  let i = ctx.instr in
  if ctx.needs_full_sync then begin
    Hac_obs.Metrics.incr i.Instr.sync_fallback;
    ctx.needs_full_sync <- false;
    sync_all ?pool ctx
  end
  else if not (Fileset.is_empty delta.touched && Fileset.is_empty delta.removed) then
    Hac_obs.Trace.with_span i.Instr.tracer ~name:"sync.delta" (fun () ->
        Hac_obs.Metrics.incr i.Instr.sync_delta;
        let pass = fresh_pass ctx in
        let n_dirs =
          match pool with
          | Some p when Hac_par.Pool.size p > 1 ->
              let levels = Depgraph.levels ctx.deps in
              Hac_obs.Metrics.set i.Instr.par_domains
                (float_of_int (Hac_par.Pool.size p));
              List.iter
                (fun level ->
                  run_level_delta p pass ctx ~touched:delta.touched ~removed:delta.removed
                    level)
                levels;
              List.fold_left (fun acc l -> acc + List.length l) 0 levels
          | Some _ | None ->
              let dirs = Depgraph.topo_all ctx.deps in
              List.iter
                (fun uid ->
                  resync_dir_delta pass ctx ~touched:delta.touched ~removed:delta.removed
                    uid)
                dirs;
              List.length dirs
        in
        flush_pass ctx pass;
        Hac_obs.Metrics.observe i.Instr.pass_dirs (float_of_int n_dirs);
        Hac_obs.Trace.set_attr_int i.Instr.tracer "dirs" n_dirs;
        Hac_obs.Trace.set_attr_int i.Instr.tracer "delta"
          (Fileset.cardinal delta.touched + Fileset.cardinal delta.removed))
