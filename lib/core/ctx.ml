type t = {
  fs : Hac_vfs.Fs.t;
  index : Hac_index.Index.t;
  uids : Uidmap.t;
  semdirs : (int, Semdir.t) Hashtbl.t;
  deps : Hac_depgraph.Depgraph.t;
  mounts : Hac_remote.Mount_table.t;
  namespaces : (string, Hac_remote.Namespace.t) Hashtbl.t;
  syn_mounts : (int, Hac_vfs.Fs.t) Hashtbl.t;
  file_meta : (string, Hac_vfs.Fs.stat) Hashtbl.t;
  skeletons : (int, Semdir.t) Hashtbl.t;
  dirty : (string, unit) Hashtbl.t;
  mutable alive : bool;
  mutable maintenance : bool;
  mutable auto_sync : bool;
  mutable reindex_every : int option;
  mutable ops_since_reindex : int;
  mutable sync_stamp : int;
  clock : Hac_fault.Clock.t;
  mutable remote_failures : int;
  mutable stale_serves : int;
  rescache : Rescache.t;
  mutable scope_generation : int;
  mutable needs_full_sync : bool;
  mutable pass_caches : bool;
  mutable durability : [ `Always | `Batch ];
  mutable journal_epoch : int;
  mutable store : Hac_store.Store.t option;
  instr : Instr.t;
}

let create ?(block_size = 8) ?(stem = true) ?transducer ?(auto_sync = false) ?reindex_every fs =
  let clock = Hac_fault.Clock.create () in
  let instr = Instr.create ~now:(fun () -> Hac_fault.Clock.now clock) () in
  let t =
    {
      fs;
      index = Hac_index.Index.create ~block_size ~stem ?transducer ();
      uids = Uidmap.create ();
      semdirs = Hashtbl.create 64;
      deps = Hac_depgraph.Depgraph.create ();
      mounts = Hac_remote.Mount_table.create ();
      namespaces = Hashtbl.create 8;
      syn_mounts = Hashtbl.create 4;
      file_meta = Hashtbl.create 256;
      skeletons = Hashtbl.create 64;
      dirty = Hashtbl.create 64;
      alive = true;
      maintenance = false;
      auto_sync;
      reindex_every;
      ops_since_reindex = 0;
      sync_stamp = 0;
      clock;
      remote_failures = 0;
      stale_serves = 0;
      rescache = Rescache.create ~metrics:instr.Instr.metrics ();
      scope_generation = 0;
      needs_full_sync = false;
      pass_caches = true;
      durability = `Batch;
      journal_epoch = -1;
      store = None;
      instr;
    }
  in
  Hac_depgraph.Depgraph.add_node t.deps Uidmap.root_uid;
  t

let bump_generation t =
  t.scope_generation <- t.scope_generation + 1;
  Hac_obs.Metrics.set t.instr.Instr.generation (float_of_int t.scope_generation)

let force_full_sync t =
  t.needs_full_sync <- true;
  bump_generation t

let fs_read t path =
  try Some (Hac_vfs.Fs.read_file t.fs path) with Hac_vfs.Errno.Error _ -> None

(* Verification reads go through the block store's cache when the tier is
   on.  Two guards keep that equivalent to reading the file itself: a dirty
   path (changed since the last settle) must come from the tree — its block
   holds the pre-change content — and the caller's read permission is
   checked up front, since the block store is maintained by the superuser
   and must not leak bodies the current user cannot open.  A block that
   fails its seal (torn, rotted, swept) falls back to the tree. *)
let reader t path =
  match t.store with
  | Some store when not (Hashtbl.mem t.dirty path) -> (
      match Hac_index.Index.doc_of_path t.index path with
      | Some id when Hac_vfs.Fs.access t.fs path 4 -> (
          match Hac_store.Store.read_doc store id with
          | Some content -> Some content
          | None -> fs_read t path)
      | _ -> fs_read t path)
  | _ -> fs_read t path

let semdir_of_uid t uid = Hashtbl.find_opt t.semdirs uid

let semdir_of_path t path =
  match Uidmap.uid_of_path t.uids path with
  | None -> None
  | Some uid -> semdir_of_uid t uid

(* HAC's own bookkeeping runs with events suppressed and as the superuser —
   the library must maintain its structures regardless of which user's call
   triggered the work (the metadata area is not user-writable). *)
let with_maintenance t f =
  if t.maintenance then f ()
  else begin
    t.maintenance <- true;
    let saved_user = Hac_vfs.Fs.current_user t.fs in
    Hac_vfs.Fs.set_user t.fs 0;
    let restore () =
      Hac_vfs.Fs.set_user t.fs saved_user;
      t.maintenance <- false
    in
    match f () with
    | v ->
        restore ();
        v
    | exception e ->
        restore ();
        raise e
  end
