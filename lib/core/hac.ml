module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Event = Hac_vfs.Event
module Index = Hac_index.Index
module Search = Hac_index.Search
module Ast = Hac_query.Ast
module Parser = Hac_query.Parser
module Depgraph = Hac_depgraph.Depgraph
module Namespace = Hac_remote.Namespace
module Mount_table = Hac_remote.Mount_table
module Fileset = Hac_bitset.Fileset

type t = Ctx.t

exception Hac_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Hac_error s)) fmt

let fs (ctx : Ctx.t) = ctx.fs

let index (ctx : Ctx.t) = ctx.index

(* -- event interception ---------------------------------------------------

   Everything HAC knows about user activity arrives here.  [maintenance]
   suppresses handling of HAC's own link surgery. *)

let semdir_of_parent (ctx : Ctx.t) path = Ctx.semdir_of_path ctx (Vpath.dirname path)

(* The epoch of the segment this instance appends to, resolved lazily from
   the on-disk chain (a fresh tree starts at 0 = dirs.log; a tree carrying
   checkpoints starts past the newest one). *)
let ensure_epoch (ctx : Ctx.t) =
  if ctx.journal_epoch < 0 then ctx.journal_epoch <- Journal.current_epoch ctx.fs;
  ctx.journal_epoch

let journal_path (ctx : Ctx.t) = Journal.segment_path (ensure_epoch ctx)

(* All durable directory-journal records funnel through here so appends are
   accounted once, next to the write.  Under [`Always] durability each
   append is flushed to the simulated disk immediately; under [`Batch] the
   settle's completion barrier flushes the batch. *)
let journal_append (ctx : Ctx.t) body =
  Hac_obs.Metrics.incr ctx.instr.Instr.journal_appends;
  Ctx.with_maintenance ctx (fun () ->
      let path = journal_path ctx in
      Fs.append_file ctx.fs path (Journal.seal body ^ "\n");
      if ctx.durability = `Always then Fs.fsync ctx.fs path)

(* Dirtying a path journals its first transition since the last settle
   ([F <path>]), so recovery knows the exact set of paths whose index entry
   may be stale: a fast mount re-reads only these instead of rescanning the
   whole tree.  Re-dirtying an already-dirty path appends nothing and a
   settle empties the set, so each epoch carries O(changed paths) F
   records. *)
let mark_dirty (ctx : Ctx.t) path =
  if not (Hashtbl.mem ctx.dirty path) then begin
    Hashtbl.replace ctx.dirty path ();
    journal_append ctx ("F " ^ path)
  end

(* A settle's domain budget becomes a pool only when it actually buys
   parallelism; [None] keeps the engine on the exact sequential code path. *)
let with_pool domains f =
  match domains with
  | Some d when d > 1 -> Hac_par.Pool.with_pool ~domains:d (fun p -> f (Some p))
  | Some _ | None -> f None

(* Settle everything now: data consistency, then scope consistency.  The
   reindex delta drives an incremental re-evaluation; structural events
   (renames, link edits — anything that set [needs_full_sync]) make
   [sync_delta] fall back to a full pass.  [?domains] re-evaluates with a
   domain pool of that width (see {!Sync.sync_all}); the result is identical
   to the default sequential settle. *)
let settle ?durability ?domains (ctx : Ctx.t) =
  (* The knob is sticky: a settle that picks a durability mode sets it for
     every subsequent journal append too. *)
  (match durability with Some d -> ctx.durability <- d | None -> ());
  (match domains with
  | Some d -> Hac_obs.Metrics.set ctx.instr.Instr.par_domains (float_of_int (max 1 d))
  | None -> ());
  Hac_obs.Trace.with_span ctx.instr.Instr.tracer ~name:"hac.settle" (fun () ->
      let _, delta = Sync.reindex_with_delta ctx () in
      with_pool domains (fun pool -> Sync.sync_delta ?pool ctx delta);
      (* Completion barrier: nothing this settle acknowledged may be
         reordered past it — the journal tail (and, the simulated disk
         persisting in order, every metadata write before it) is on disk
         before the caller sees the settle return. *)
      Fs.fsync ctx.fs (journal_path ctx))

let tick (ctx : Ctx.t) =
  ctx.ops_since_reindex <- ctx.ops_since_reindex + 1;
  if ctx.auto_sync then settle ctx
  else
    match ctx.reindex_every with
    | Some n when ctx.ops_since_reindex >= n -> settle ctx
    | Some _ | None -> ()

let record_permanent_link (ctx : Ctx.t) sd path =
  match
    try Some (Fs.readlink ctx.fs path) with Hac_vfs.Errno.Error _ -> None
  with
  | None -> ()
  | Some raw ->
      let target = Link.target_of_symlink raw in
      let key = Link.target_key target in
      Semdir.unprohibit sd key;
      Semdir.add_link sd
        { Link.name = Vpath.basename path; target; cls = Link.Permanent };
      (* Permanent/prohibited sets gate query results outside any reindex
         delta: only a full re-evaluation restores the invariant. *)
      Ctx.force_full_sync ctx

let record_link_removal (ctx : Ctx.t) sd path =
  let name = Vpath.basename path in
  match Semdir.remove_link sd name with
  | Some l ->
      Ctx.force_full_sync ctx;
      (* Only prohibit when the target is now fully gone from the
         directory — deleting one of two aliases is not a rejection. *)
      if Semdir.link_by_target sd l.Link.target = None then begin
        let key = Link.target_key l.Link.target in
        Semdir.prohibit sd key;
        (* Keep the stored query result in step with the physical links. *)
        match l.Link.target with
        | Link.Local p -> (
            match Index.doc_of_path ctx.index p with
            | Some id ->
                sd.Semdir.transient_local <-
                  Hac_bitset.Fileset.remove sd.Semdir.transient_local id
            | None -> ())
        | Link.Remote _ ->
            sd.Semdir.transient_remote <-
              List.filter (fun r -> r.Semdir.rr_uri <> key) sd.Semdir.transient_remote
      end
  | None -> ()

let index_rename_subtree (ctx : Ctx.t) ~src ~dst =
  let to_move =
    Fileset.fold
      (fun id acc ->
        match Index.doc_path ctx.index id with
        | Some p when Vpath.is_prefix ~prefix:src p -> p :: acc
        | Some _ | None -> acc)
      (Index.universe ctx.index) []
  in
  List.iter
    (fun old_path ->
      match Vpath.replace_prefix ~prefix:src ~by:dst old_path with
      | Some new_path -> Index.rename_path ctx.index ~old_path ~new_path
      | None -> ())
    to_move

let rename_dirty (ctx : Ctx.t) ~src ~dst =
  let moved =
    Hashtbl.fold
      (fun p () acc -> if Vpath.is_prefix ~prefix:src p then p :: acc else acc)
      ctx.dirty []
  in
  List.iter
    (fun p ->
      Hashtbl.remove ctx.dirty p;
      match Vpath.replace_prefix ~prefix:src ~by:dst p with
      | Some p' -> Hashtbl.replace ctx.dirty p' ()
      | None -> ())
    moved

let forget_dir (ctx : Ctx.t) path =
  (* The whole subtree is gone (rmdir fires once per directory, but a
     directory removal may race bulk [rmtree] events; be idempotent). *)
  match Uidmap.remove ctx.uids path with
  | None -> ()
  | Some uid ->
      Rescache.drop ctx.rescache ~uid;
      (* Losing a semantic directory changes every scope that referenced
         it; a syntactic directory's files already produce removal events. *)
      if Hashtbl.mem ctx.semdirs uid then Ctx.force_full_sync ctx;
      Hashtbl.remove ctx.semdirs uid;
      Hashtbl.remove ctx.skeletons uid;
      Depgraph.remove_node ctx.deps uid;
      Mount_table.unmount_all ctx.mounts ~uid;
      Sync.unpersist_semdir ctx uid;
      journal_append ctx (Printf.sprintf "X %d" uid)

let on_event (ctx : Ctx.t) ev =
  if ctx.alive && not ctx.maintenance then begin
    (match ev with
    | Event.Created (Event.File, p) ->
        (* The paper initialises the open-descriptor slot and attribute
           cache entry for every new file, in shared memory. *)
        (match Fs.lstat ctx.fs p with
        | st -> Hashtbl.replace ctx.file_meta p st
        | exception Hac_vfs.Errno.Error _ -> ());
        mark_dirty ctx p
    | Event.Written p ->
        (match Hashtbl.find_opt ctx.file_meta p with
        | Some _ -> (
            match Fs.lstat ctx.fs p with
            | st -> Hashtbl.replace ctx.file_meta p st
            | exception Hac_vfs.Errno.Error _ -> ())
        | None -> ());
        mark_dirty ctx p
    | Event.Removed (Event.File, p) ->
        Hashtbl.remove ctx.file_meta p;
        mark_dirty ctx p
    | Event.Created (Event.Dir, p) ->
        (* The paper's HAC initialises (empty) query, query-result and
           permanent/prohibited link structures, a global-map entry and a
           dependency-graph node for every new directory — and stores them
           on disk, which is why Andrew phase 1 is its worst phase. *)
        let uid = Uidmap.register ctx.uids p in
        Depgraph.add_node ctx.deps uid;
        Hashtbl.replace ctx.skeletons uid (Semdir.create ~uid Ast.All);
        journal_append ctx (Printf.sprintf "D %d %s" uid p)
    | Event.Removed (Event.Dir, p) -> forget_dir ctx p
    | Event.Created (Event.Link, p) -> (
        match semdir_of_parent ctx p with
        | Some sd -> record_permanent_link ctx sd p
        | None -> ())
    | Event.Removed (Event.Link, p) -> (
        match semdir_of_parent ctx p with
        | Some sd -> record_link_removal ctx sd p
        | None -> ())
    | Event.Renamed (src, dst) -> (
        (* Renames change path-derived membership (subtree scopes, built-in
           attributes) without marking anything dirty: no reindex delta will
           ever describe them. *)
        Ctx.force_full_sync ctx;
        match Fs.lstat ctx.fs dst with
        | { Fs.st_kind = Event.Dir; _ } ->
            Uidmap.rename ctx.uids ~old_path:src ~new_path:dst;
            index_rename_subtree ctx ~src ~dst;
            rename_dirty ctx ~src ~dst;
            (match Uidmap.uid_of_path ctx.uids dst with
            | Some uid -> journal_append ctx (Printf.sprintf "M %d %s" uid dst)
            | None -> ());
            (* The moved directory's parent changed: rewire its dependency
               edge when it is semantic.  (Descendants kept their parents.) *)
            (match Ctx.semdir_of_path ctx dst with
            | Some sd -> (
                match Sync.recompute_deps ctx sd with
                | Ok () -> ()
                | Error _ ->
                    (* A cycle via the new parent: leave edges as they were;
                       the next explicit schquery will surface the issue. *)
                    ())
            | None -> ())
        | { Fs.st_kind = Event.File; _ } ->
            Index.rename_path ctx.index ~old_path:src ~new_path:dst;
            rename_dirty ctx ~src ~dst;
            (* Directory records never mention files, so across a remount
               the rename would be invisible to the journal; F records for
               both ends make a fast mount forget the vanished source and
               re-read the destination. *)
            journal_append ctx ("F " ^ src);
            journal_append ctx ("F " ^ dst)
        | { Fs.st_kind = Event.Link; _ } ->
            (match semdir_of_parent ctx src with
            | Some sd -> record_link_removal ctx sd src
            | None -> ());
            (match semdir_of_parent ctx dst with
            | Some sd -> record_permanent_link ctx sd dst
            | None -> ())
        | exception Hac_vfs.Errno.Error _ -> ()));
    tick ctx
  end

let setup (ctx : Ctx.t) =
  Event.subscribe (Fs.events ctx.fs) (on_event ctx);
  Ctx.with_maintenance ctx (fun () -> Fs.mkdir_p ctx.fs Sync.meta_root);
  ctx

let create ?block_size ?stem ?transducer ?auto_sync ?reindex_every () =
  setup (Ctx.create ?block_size ?stem ?transducer ?auto_sync ?reindex_every (Fs.create ()))

let of_fs ?block_size ?stem ?transducer ?auto_sync ?reindex_every fs =
  let ctx = Ctx.create ?block_size ?stem ?transducer ?auto_sync ?reindex_every fs in
  (* Allocate this life's uids strictly above everything the on-disk
     metadata mentions, so nothing we register can alias a previous life's
     identifiers (stale structure files must stay unreadable, and a crash
     during recovery must never mix two incarnations' records). *)
  Uidmap.reserve ctx.uids (Journal.max_uid fs);
  (* Adopt existing content: register directories, index files.  The
     metadata area is HAC's own and stays out of the index. *)
  Fs.walk fs Vpath.root (fun path st ->
      if not (Vpath.is_prefix ~prefix:Sync.meta_root path) then
        match st.Fs.st_kind with
        | Event.Dir -> ignore (Uidmap.register ctx.uids path)
        | Event.File ->
            ignore (Index.add_document ctx.index ~path ~content:(Fs.read_file fs path))
        | Event.Link -> ());
  setup ctx

(* O(delta) mount: rebuild the namespace and index skeleton from the
   checkpoint's reconstruction images — the journal's uid map for
   directories, the store's document table for files — instead of
   re-reading and re-tokenizing every document.  The walk below touches
   only metadata; postings stay on disk, demand-faulted per term through
   the index's cold provider.  Anything the images cannot vouch for —
   damaged tail records, post-checkpoint namespace surgery (M/X records),
   a missing or epoch-stale document table, a store lineage mismatch —
   aborts with [Error], and the caller falls back to the full
   {!of_fs} + {!Recover.reload_report} oracle. *)
let fast_adopt ?block_size ?stem ?transducer ?auto_sync ?reindex_every ?budget fs :
    (t * (int * string) list, string) result =
  let chain = Journal.read_chain fs in
  match chain.Journal.checkpoint with
  | None -> Error "no readable checkpoint"
  | Some (epoch, _) -> (
      let r = Journal.replay_chain chain in
      if r.Journal.corrupt > 0 || r.Journal.malformed > 0 then
        Error "journal tail carries damaged records"
      else if r.Journal.seg_moved > 0 then
        Error "post-checkpoint rename or removal (M/X) in the tail"
      else
        match Hac_store.Store.read_docs fs with
        | None -> Error "document table missing or damaged"
        | Some docs when docs.Hac_store.Store.epoch <> epoch ->
            Error "document table does not match the checkpoint epoch"
        | Some docs -> (
            let ctx =
              Ctx.create ?block_size ?stem ?transducer ?auto_sync ?reindex_every fs
            in
            match
              Hac_store.Store.attach ?budget ~metrics:ctx.instr.Instr.metrics
                ~lineage:docs.Hac_store.Store.lineage fs
            with
            | Error e -> Error e
            | Ok store ->
                Uidmap.reserve ctx.uids (Journal.max_uid fs);
                let by_path = Hashtbl.create 256 in
                Hashtbl.iter
                  (fun uid p -> Hashtbl.replace by_path p uid)
                  r.Journal.map;
                let doc_rows = Hashtbl.create 1024 in
                List.iter
                  (fun (id, key, p) -> Hashtbl.replace doc_rows p (id, key))
                  docs.Hac_store.Store.rows;
                Index.reserve_doc_ids ctx.index docs.Hac_store.Store.next;
                Fs.walk fs Vpath.root (fun path st ->
                    if not (Vpath.is_prefix ~prefix:Sync.meta_root path) then
                      match st.Fs.st_kind with
                      | Event.Dir -> (
                          (* Keep the journaled uid so recovered structure
                             files and queries resolve; a directory the
                             journal has never heard of (its D record was
                             not yet durable) registers fresh, as the full
                             oracle would. *)
                          match Hashtbl.find_opt by_path path with
                          | Some uid -> Uidmap.adopt ctx.uids uid path
                          | None -> ignore (Uidmap.register ctx.uids path))
                      | Event.File -> (
                          match Hashtbl.find_opt doc_rows path with
                          | Some (id, key) ->
                              Index.adopt_document ctx.index ~id ~path;
                              Option.iter
                                (Hac_store.Store.adopt_doc_key store id)
                                key
                          | None ->
                              (* Unknown to the table: created since the
                                 checkpoint — index it on first settle. *)
                              Hashtbl.replace ctx.dirty path ())
                      | Event.Link -> ());
                (* The journaled dirty delta (F records): re-read exactly
                   the paths touched since the last settle.  A source that
                   vanished (delete, rename away) was simply never adopted
                   above — nothing to forget. *)
                Hashtbl.iter
                  (fun p () ->
                    match Fs.lstat fs p with
                    | { Fs.st_kind = Event.File; _ } ->
                        Hashtbl.replace ctx.dirty p ()
                    | _ -> ()
                    | exception Hac_vfs.Errno.Error _ -> ())
                  r.Journal.files;
                Index.set_cold ctx.index
                  ~lookup:(fun key ->
                    Hac_store.Store.cold_lookup store key ~universe:(fun () ->
                        Index.universe ctx.index))
                  ~cost:(Hac_store.Store.cold_cost store)
                  ~words:(fun () -> Hac_store.Store.cold_words store);
                ctx.store <- Some store;
                Ok (setup ctx, Journal.semantic_entries r)))

let shutdown ?(graceful = true) (ctx : Ctx.t) =
  if ctx.alive then begin
    if graceful then settle ctx;
    ctx.alive <- false
  end

let set_durability (ctx : Ctx.t) d = ctx.durability <- d

let durability (ctx : Ctx.t) = ctx.durability

let journal_epoch (ctx : Ctx.t) = ensure_epoch ctx

(* -- the durable storage tier ----------------------------------------------

   Off by default: every structure stays memory-resident exactly as before,
   and nothing under [/.hac/store] exists.  Enabling the tier backs every
   live document with a content-addressed block (verification reads then go
   through the byte-bounded cache, see {!Ctx.reader}), and makes each
   checkpoint additionally persist the postings segments and the document
   table that the O(delta) fast mount rebuilds from. *)

let enable_store ?budget (ctx : Ctx.t) =
  if ctx.store = None then
    Ctx.with_maintenance ctx (fun () ->
        let store =
          Hac_store.Store.create ?budget ~metrics:ctx.instr.Instr.metrics ctx.fs
        in
        (* Seed eagerly: tier on means every live doc is block-backed, so a
           reader never has to decide per-doc whether the store is
           authoritative. *)
        Index.iter_live ctx.index (fun id path ->
            match
              try Some (Fs.read_file ctx.fs path) with Hac_vfs.Errno.Error _ -> None
            with
            | Some content -> Hac_store.Store.put_doc store id content
            | None -> ());
        ctx.store <- Some store)

let store_enabled (ctx : Ctx.t) = ctx.store <> None

let store (ctx : Ctx.t) = ctx.store

(* -- plain fs wrappers ----------------------------------------------------- *)

(* The paper's DLL interposes on every call: resolve the user's path in
   HAC's name space, look the directory up in the global map, and decide
   whether consistency machinery applies.  For semantic directories this is
   also where lazily stored query results become visible: the first access
   materialises the transient links. *)
let intercept (ctx : Ctx.t) p =
  let p = Vpath.normalize p in
  let touch_dir path =
    match Uidmap.uid_of_path ctx.uids path with
    | None -> ()
    | Some uid -> (
        match Hashtbl.find_opt ctx.semdirs uid with
        | Some sd -> Sync.materialize ctx sd
        | None -> ())
  in
  touch_dir p;
  touch_dir (Vpath.dirname p)

(* Syntactic mount resolution: the longest mount-point prefix wins; the
   local path suffix is re-rooted in the foreign file system. *)
let foreign (ctx : Ctx.t) p =
  if Hashtbl.length ctx.syn_mounts = 0 then None
  else begin
    let p = Vpath.normalize p in
    let best =
      Hashtbl.fold
        (fun uid ffs acc ->
          match Uidmap.path_of_uid ctx.uids uid with
          | Some mp when Vpath.is_prefix ~prefix:mp p -> (
              match acc with
              | Some (bmp, _) when String.length bmp >= String.length mp -> acc
              | Some _ | None -> Some (mp, ffs))
          | Some _ | None -> acc)
        ctx.syn_mounts None
    in
    match best with
    | None -> None
    | Some (mp, ffs) ->
        Option.map (fun rel -> (ffs, rel)) (Vpath.replace_prefix ~prefix:mp ~by:"/" p)
  end

let read_only_if_foreign (ctx : Ctx.t) p =
  if foreign ctx p <> None then
    Hac_vfs.Errno.raise_error Hac_vfs.Errno.EROFS (Vpath.normalize p)

let mkdir (ctx : Ctx.t) p =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.mkdir ctx.fs p

let mkdir_p (ctx : Ctx.t) p =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.mkdir_p ctx.fs p

let rmdir (ctx : Ctx.t) p =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.rmdir ctx.fs p

let write_file (ctx : Ctx.t) p c =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.write_file ctx.fs p c

let append_file (ctx : Ctx.t) p c =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.append_file ctx.fs p c

let read_file (ctx : Ctx.t) p =
  intercept ctx p;
  match foreign ctx p with
  | Some (ffs, rel) -> Fs.read_file ffs rel
  | None -> Fs.read_file ctx.fs p

let unlink (ctx : Ctx.t) p =
  intercept ctx p;
  read_only_if_foreign ctx p;
  Fs.unlink ctx.fs p

let rename (ctx : Ctx.t) ~src ~dst =
  intercept ctx src;
  intercept ctx dst;
  read_only_if_foreign ctx src;
  read_only_if_foreign ctx dst;
  Fs.rename ctx.fs ~src ~dst

let symlink (ctx : Ctx.t) ~target ~link =
  intercept ctx link;
  read_only_if_foreign ctx link;
  Fs.symlink ctx.fs ~target ~link

let readlink (ctx : Ctx.t) p =
  intercept ctx p;
  match foreign ctx p with
  | Some (ffs, rel) -> Fs.readlink ffs rel
  | None -> Fs.readlink ctx.fs p

let readdir (ctx : Ctx.t) p =
  intercept ctx p;
  match foreign ctx p with
  | Some (ffs, rel) -> Fs.readdir ffs rel
  | None -> Fs.readdir ctx.fs p

let exists (ctx : Ctx.t) p =
  intercept ctx p;
  match foreign ctx p with
  | Some (ffs, rel) -> Fs.exists ffs rel
  | None -> Fs.exists ctx.fs p

let is_dir (ctx : Ctx.t) p =
  intercept ctx p;
  match foreign ctx p with
  | Some (ffs, rel) -> Fs.is_dir ffs rel
  | None -> Fs.is_dir ctx.fs p

(* -- semantic directories --------------------------------------------------- *)

let parse_query (ctx : Ctx.t) qs =
  let ast =
    match Parser.parse_result qs with
    | Ok ast -> ast
    | Error msg -> fail "bad query %S: %s" qs msg
  in
  (* Install directory references: path -> uid, which survives renames. *)
  Ast.map_dirrefs
    (function
      | Ast.Ref_uid _ as r -> r
      | Ast.Ref_path p -> (
          if not (Fs.is_dir ctx.fs p) then
            fail "query references %s, which is not a directory" p;
          match Uidmap.uid_of_path ctx.uids p with
          | Some uid -> Ast.Ref_uid uid
          | None -> Ast.Ref_uid (Uidmap.register ctx.uids p)))
    ast

let uid_of_dir (ctx : Ctx.t) path =
  let path = Vpath.normalize path in
  if not (Fs.is_dir ctx.fs path) then fail "%s is not a directory" path;
  match Uidmap.uid_of_path ctx.uids path with
  | Some uid -> uid
  | None -> Uidmap.register ctx.uids path

let install_semdir (ctx : Ctx.t) uid query =
  (* Promote the skeleton created at mkdir time, if any. *)
  let sd =
    match Hashtbl.find_opt ctx.skeletons uid with
    | Some sk ->
        Hashtbl.remove ctx.skeletons uid;
        sk.Semdir.query <- query;
        sk
    | None -> Semdir.create ~uid query
  in
  Hashtbl.replace ctx.semdirs uid sd;
  match Sync.recompute_deps ctx sd with
  | Ok () ->
      Sync.sync_from ctx uid;
      (* Journal the promotion after the first persist so recovery never
         sees a semantic flag whose structure files were not yet written. *)
      journal_append ctx (Printf.sprintf "S %d" uid);
      sd
  | Error cycle ->
      Hashtbl.remove ctx.semdirs uid;
      Depgraph.remove_node ctx.deps uid;
      fail "query would create a dependency cycle through uids %s"
        (String.concat " -> " (List.map string_of_int cycle))

let smkdir (ctx : Ctx.t) path query_string =
  let path = Vpath.normalize path in
  Fs.mkdir ctx.fs path;
  match
    let query = parse_query ctx query_string in
    let uid = uid_of_dir ctx path in
    install_semdir ctx uid query
  with
  | _ -> ()
  | exception e ->
      (* Leave no half-made directory behind. *)
      (try Fs.rmdir ctx.fs path with Hac_vfs.Errno.Error _ -> ());
      raise e

let semdir_or_fail (ctx : Ctx.t) path =
  match Ctx.semdir_of_path ctx path with
  | Some sd -> sd
  | None -> fail "%s is not a semantic directory" (Vpath.normalize path)

let srmdir (ctx : Ctx.t) path =
  let path = Vpath.normalize path in
  let sd = semdir_or_fail ctx path in
  Ctx.with_maintenance ctx (fun () ->
      List.iter
        (fun l ->
          let lpath = Vpath.join path l.Link.name in
          if Fs.is_symlink ctx.fs lpath then Fs.unlink ctx.fs lpath)
        (Semdir.all_links sd));
  Fs.rmdir ctx.fs path (* the Removed(Dir) event clears uid/semdir/deps *)

let schquery (ctx : Ctx.t) path query_string =
  let path = Vpath.normalize path in
  let query = parse_query ctx query_string in
  let uid = uid_of_dir ctx path in
  match Ctx.semdir_of_uid ctx uid with
  | None -> ignore (install_semdir ctx uid query)
  | Some sd ->
      let old_query = sd.Semdir.query in
      sd.Semdir.query <- query;
      (match Sync.recompute_deps ctx sd with
      | Ok () -> ()
      | Error cycle ->
          sd.Semdir.query <- old_query;
          fail "query would create a dependency cycle through uids %s"
            (String.concat " -> " (List.map string_of_int cycle)));
      Sync.sync_from ctx uid

let sreadin (ctx : Ctx.t) path =
  match Ctx.semdir_of_path ctx path with
  | None -> None
  | Some sd ->
      Some (Ast.to_string ~path_of_uid:(Uidmap.path_of_uid ctx.uids) sd.Semdir.query)

let squery_ast (ctx : Ctx.t) path =
  Option.map (fun sd -> sd.Semdir.query) (Ctx.semdir_of_path ctx path)

let is_semantic (ctx : Ctx.t) path = Ctx.semdir_of_path ctx path <> None

let semantic_dirs (ctx : Ctx.t) =
  Hashtbl.fold
    (fun uid _ acc ->
      match Uidmap.path_of_uid ctx.uids uid with
      | Some p -> p :: acc
      | None -> acc)
    ctx.semdirs []
  |> List.sort compare

let ssync ?domains (ctx : Ctx.t) path =
  let uid = uid_of_dir ctx path in
  with_pool domains (fun pool -> Sync.sync_from ?pool ctx uid)

let sync_all ?domains (ctx : Ctx.t) =
  with_pool domains (fun pool -> Sync.sync_all ?pool ctx)

let reindex ?domains (ctx : Ctx.t) ?under () =
  let n, delta = Sync.reindex_with_delta ctx ?under () in
  with_pool domains (fun pool -> Sync.sync_delta ?pool ctx delta);
  n

let reindex_full ?domains (ctx : Ctx.t) ?under () =
  let n = Sync.reindex ctx ?under () in
  with_pool domains (fun pool -> Sync.sync_all ?pool ctx);
  ctx.needs_full_sync <- false;
  n

let dirty_count (ctx : Ctx.t) = Hashtbl.length ctx.dirty

let set_auto_sync (ctx : Ctx.t) on = ctx.auto_sync <- on

let auto_sync_enabled (ctx : Ctx.t) = ctx.auto_sync

let set_pass_caches (ctx : Ctx.t) on = ctx.pass_caches <- on

let pass_caches_enabled (ctx : Ctx.t) = ctx.pass_caches

let set_cas (ctx : Ctx.t) on = Index.set_use_cas ctx.index on

let cas_enabled (ctx : Ctx.t) = Index.use_cas ctx.index

(* Stats-time accounting: measuring the CAS postings forces every partition
   snapshot, so the container gauges are published here — never on the
   indexing path. *)
let index_report (ctx : Ctx.t) =
  let s = Index.cas_stats ctx.index in
  let i = ctx.instr in
  let setg g v = Hac_obs.Metrics.set g (float_of_int v) in
  setg i.Instr.index_containers_arrays s.Hac_index.Cas.arrays;
  setg i.Instr.index_containers_bitmaps s.Hac_index.Cas.bitmaps;
  setg i.Instr.index_containers_runs s.Hac_index.Cas.run_containers;
  setg i.Instr.index_postings_bytes s.Hac_index.Cas.bytes;
  setg i.Instr.index_postings_uncompressed s.Hac_index.Cas.uncompressed_bytes;
  s

(* -- links ------------------------------------------------------------------ *)

let links (ctx : Ctx.t) path =
  match Ctx.semdir_of_path ctx path with
  | None -> []
  | Some sd ->
      Sync.materialize ctx sd;
      Semdir.all_links sd

let prohibited (ctx : Ctx.t) path = Semdir.prohibited_keys (semdir_or_fail ctx path)

let add_permanent (ctx : Ctx.t) ~dir ~target =
  let dir = Vpath.normalize dir in
  let sd = semdir_or_fail ctx dir in
  Sync.materialize ctx sd;
  let target = Link.target_of_symlink target in
  match Semdir.link_by_target sd target with
  | Some l ->
      (* Already present: upgrade to permanent rather than alias it. *)
      Semdir.unprohibit sd (Link.target_key target);
      Semdir.add_link sd { l with Link.cls = Link.Permanent };
      Ctx.force_full_sync ctx;
      l.Link.name
  | None ->
      let taken name = Fs.lexists ctx.fs (Vpath.join dir name) in
      let name = Semdir.fresh_link_name sd ~taken target in
      (* Create the physical symlink outside maintenance mode so the
         ordinary interception records it permanent and lifts any
         prohibition. *)
      Fs.symlink ctx.fs ~target:(Link.symlink_value target) ~link:(Vpath.join dir name);
      name

let remove_link (ctx : Ctx.t) ~dir ~name =
  let dir = Vpath.normalize dir in
  Sync.materialize ctx (semdir_or_fail ctx dir);
  Fs.unlink ctx.fs (Vpath.join dir name)

let unprohibit (ctx : Ctx.t) ~dir ~target =
  let sd = semdir_or_fail ctx dir in
  Semdir.unprohibit sd (Link.target_key (Link.target_of_symlink target));
  (* The lifted target can only re-enter through a re-evaluation that
     reconsiders it — no reindex delta will mention it. *)
  Ctx.force_full_sync ctx

let prohibit_target (ctx : Ctx.t) ~dir ~target =
  let dir = Vpath.normalize dir in
  let sd = semdir_or_fail ctx dir in
  Sync.materialize ctx sd;
  let t = Link.target_of_symlink target in
  match Semdir.link_by_target sd t with
  | Some l ->
      (* Physically present: removing it prohibits it, like the user's rm. *)
      Fs.unlink ctx.fs (Vpath.join dir l.Link.name)
  | None ->
      Semdir.prohibit sd (Link.target_key t);
      Ctx.force_full_sync ctx

(* Reinstall a semantic directory from recovered metadata: the directory and
   its physical links already exist in the file system; [permanent] names
   the links the previous life classified permanent, everything else present
   is adopted as transient, and [prohibited] target keys are restored before
   the first re-evaluation so nothing sneaks back in. *)
let restore_semdir (ctx : Ctx.t) path ~query ~permanent ~prohibited =
  let path = Vpath.normalize path in
  let q = parse_query ctx query in
  let uid = uid_of_dir ctx path in
  if Hashtbl.mem ctx.semdirs uid then fail "%s is already a semantic directory" path;
  let sd =
    match Hashtbl.find_opt ctx.skeletons uid with
    | Some sk ->
        Hashtbl.remove ctx.skeletons uid;
        sk.Semdir.query <- q;
        sk
    | None -> Semdir.create ~uid q
  in
  List.iter (Semdir.prohibit sd) prohibited;
  let adopted = ref 0 in
  List.iter
    (fun name ->
      let lp = Vpath.join path name in
      if Fs.is_symlink ctx.fs lp then begin
        incr adopted;
        let target = Link.target_of_symlink (Fs.readlink ctx.fs lp) in
        let cls = if List.mem name permanent then Link.Permanent else Link.Transient in
        Semdir.add_link sd { Link.name; target; cls };
        if cls = Link.Transient then begin
          match target with
          | Link.Local p -> (
              match Index.doc_of_path ctx.index p with
              | Some id ->
                  sd.Semdir.transient_local <-
                    Fileset.add sd.Semdir.transient_local id
              | None -> ())
          | Link.Remote { ns_id; uri } ->
              sd.Semdir.transient_remote <-
                sd.Semdir.transient_remote
                @ [ { Semdir.rr_ns = ns_id; rr_uri = uri; rr_name = name; rr_stale = false } ]
        end
      end)
    (Fs.readdir ctx.fs path);
  sd.Semdir.materialized <- !adopted > 0;
  Hashtbl.replace ctx.semdirs uid sd;
  match Sync.recompute_deps ctx sd with
  | Ok () -> Sync.sync_from ctx uid
  | Error cycle ->
      Hashtbl.remove ctx.semdirs uid;
      fail "restored query would create a dependency cycle through uids %s"
        (String.concat " -> " (List.map string_of_int cycle))

let resolve_target (ctx : Ctx.t) path =
  (* A link inside a semantic directory may not be materialised yet. *)
  (match Ctx.semdir_of_path ctx (Vpath.dirname path) with
  | Some sd -> Sync.materialize ctx sd
  | None -> ());
  if Fs.is_symlink ctx.fs path then Link.target_of_symlink (Fs.readlink ctx.fs path)
  else Link.Local (Vpath.normalize path)

let resolve_link (ctx : Ctx.t) path =
  match resolve_target ctx path with
  | Link.Local p -> Ctx.reader ctx p
  | Link.Remote { ns_id; uri } -> Sync.fetch_remote ctx ~ns_id ~uri

let sact (ctx : Ctx.t) link_path =
  let link_path = Vpath.normalize link_path in
  let dir = Vpath.dirname link_path in
  let sd = semdir_or_fail ctx dir in
  Sync.materialize ctx sd;
  match resolve_link ctx link_path with
  | None -> []
  | Some content ->
      let query_words = Ast.words sd.Semdir.query in
      let hits = ref [] in
      let k w = if Index.stemming ctx.index then Hac_index.Stemmer.stem w else w in
      let keys = List.map k query_words in
      Hac_index.Tokenizer.iter_lines content (fun lineno line ->
          let line_has = ref false in
          Hac_index.Tokenizer.iter_words line (fun x ->
              if List.mem (k x) keys then line_has := true);
          if !line_has then hits := (lineno, line) :: !hits);
      List.rev !hits

(* Commit an atomic checkpoint of the full semantic state: a consolidated
   journal (every directory known to this instance, keyed by its uids, plus
   the semantic flags) and a copy of every live directory's structure files,
   bundled into one checksummed {!Hac_vfs.Image} blob.  The blob is
   published with the classic write-new / fsync / rename / fsync dance, so
   a crash at any point leaves either the old chain or the new one — never
   a half-written base.  After the commit, appends move to the next epoch's
   segment; nothing old is deleted here (that is {!compact}'s job). *)
let do_checkpoint (ctx : Ctx.t) =
  Hashtbl.iter (fun _ sd -> Sync.persist_semdir ctx sd) ctx.semdirs;
  Ctx.with_maintenance ctx (fun () ->
      Hac_obs.Trace.with_span ctx.instr.Instr.tracer ~name:"hac.checkpoint" (fun () ->
          let epoch = ensure_epoch ctx in
          let b = Buffer.create 1024 in
          Uidmap.fold
            (fun uid path () ->
              if path <> Vpath.root && not (Vpath.is_prefix ~prefix:Sync.meta_root path)
              then
                Buffer.add_string b (Journal.seal (Printf.sprintf "D %d %s" uid path) ^ "\n"))
            ctx.uids ();
          Hashtbl.iter
            (fun uid _ ->
              Buffer.add_string b (Journal.seal (Printf.sprintf "S %d" uid) ^ "\n"))
            ctx.semdirs;
          (* Paths still dirty at checkpoint time carry over: without them a
             remount from this checkpoint alone would believe the index
             entries are fresh. *)
          Hashtbl.iter
            (fun p () -> Buffer.add_string b (Journal.seal ("F " ^ p) ^ "\n"))
            ctx.dirty;
          let img = Fs.create () in
          Fs.write_file img "/dirs.log" (Buffer.contents b);
          Hashtbl.iter
            (fun uid _ ->
              List.iter
                (fun f ->
                  match (try Some (Fs.read_file ctx.fs f) with Hac_vfs.Errno.Error _ -> None) with
                  | Some c -> Fs.write_file img ("/" ^ Vpath.basename f) c
                  | None -> ())
                (Sync.meta_files uid))
            ctx.semdirs;
          let sealed = Journal.seal_blob (Hac_vfs.Image.dump img) in
          if not (Fs.is_dir ctx.fs Sync.meta_root) then Fs.mkdir_p ctx.fs Sync.meta_root;
          (* With the tier on, the checkpoint also commits the fast-mount
             image: the resident postings as an immutable segment, then the
             document table stamped with this epoch.  Both are published
             before the checkpoint's commit rename — the simulated disk
             persists in order, so a durable checkpoint implies a durable
             table; a crash in between leaves an epoch mismatch that sends
             the next mount to the full oracle.  The segment dump replaces
             the whole set only when no cold provider is installed (the
             resident index then covers every live doc); after a fast mount
             the residents are just the delta, appended as a new segment for
             the compactor to fold in. *)
          (match ctx.store with
          | None -> ()
          | Some store ->
              let entries = ref [] in
              Index.iter_cas_terms ctx.index (fun key ids ->
                  entries := (key, Fileset.elements ids) :: !entries);
              let entries = List.sort compare !entries in
              let replace = not (Index.has_cold ctx.index) in
              if entries <> [] || replace then
                ignore (Hac_store.Store.dump_segment store ~replace entries : string);
              let rows = ref [] in
              Index.iter_live ctx.index (fun id path ->
                  rows := (id, Hac_store.Store.doc_key store id, path) :: !rows);
              Hac_store.Store.write_docs store ~epoch
                ~next:(Index.next_doc_id ctx.index)
                (List.rev !rows));
          Fs.write_file ctx.fs Journal.checkpoint_tmp sealed;
          Fs.fsync ctx.fs Journal.checkpoint_tmp;
          Fs.rename ctx.fs ~src:Journal.checkpoint_tmp ~dst:(Journal.checkpoint_path epoch);
          Fs.fsync ctx.fs (Journal.checkpoint_path epoch);
          ctx.journal_epoch <- epoch + 1;
          Hac_obs.Metrics.incr ctx.instr.Instr.journal_checkpoints;
          Hac_obs.Metrics.set ctx.instr.Instr.journal_epoch (float_of_int ctx.journal_epoch);
          epoch))

let checkpoint ?durability ?domains (ctx : Ctx.t) =
  settle ?durability ?domains ctx;
  do_checkpoint ctx

(* Kept under its historical name for the recovery path: re-key the
   metadata area around this instance's uids.  The consolidated checkpoint
   *is* that re-keying — committed atomically instead of the old
   delete-then-rewrite, which a crash in the middle could halve. *)
let checkpoint_metadata (ctx : Ctx.t) = ignore (do_checkpoint ctx)

(* Truncate history a durable checkpoint has made redundant: segments at or
   below the newest checkpoint that proves readable, checkpoints older than
   it, any uncommitted checkpoint scratch, and structure files of uids the
   surviving chain no longer flags semantic (stale leftovers of previous
   lives — unreachable, since recovery only reads structure files for
   chain-semantic uids). *)
let compact (ctx : Ctx.t) =
  Ctx.with_maintenance ctx (fun () ->
      let removed = ref 0 in
      let rm p = if Fs.lexists ctx.fs p then begin Fs.unlink ctx.fs p; incr removed end in
      let segments, ckpts = Journal.scan ctx.fs in
      let newest_valid =
        List.fold_left
          (fun acc (e, p) ->
            match Journal.load_checkpoint ctx.fs p with Ok _ -> Some e | Error _ -> acc)
          None ckpts
      in
      (match newest_valid with
      | None -> ()
      | Some e ->
          List.iter (fun (se, p) -> if se <= e then rm p) segments;
          List.iter (fun (ce, p) -> if ce < e then rm p) ckpts);
      rm Journal.checkpoint_tmp;
      (match newest_valid with
      | None -> ()
      | Some _ ->
          let live = Journal.replay_chain (Journal.read_chain ctx.fs) in
          if Fs.is_dir ctx.fs Sync.meta_root then
            List.iter
              (fun name ->
                match Journal.sd_uid_of_name name with
                | Some uid when not (Hashtbl.mem live.Journal.sem uid) ->
                    rm (Sync.meta_root ^ "/" ^ name)
                | Some _ | None -> ())
              (Fs.readdir ctx.fs Sync.meta_root));
      (* The storage tier compacts alongside: fold the postings segments
         into one (size-tiered merge, publishing a fresh segment and
         manifest before the olds are unlinked) and sweep unreferenced
         blocks and abandoned scratch. *)
      (match ctx.store with
      | None -> ()
      | Some store ->
          ignore (Hac_store.Store.merge store : bool);
          removed := !removed + Hac_store.Store.sweep store);
      if !removed > 0 then Hac_obs.Metrics.incr ctx.instr.Instr.journal_compactions;
      !removed)

(* -- mounts ------------------------------------------------------------------ *)

let smount (ctx : Ctx.t) path ns =
  let uid = uid_of_dir ctx path in
  Hashtbl.replace ctx.namespaces ns.Namespace.ns_id ns;
  Mount_table.smount ctx.mounts ~uid ns;
  Sync.sync_all ctx

let smount_fs (ctx : Ctx.t) path ffs =
  let uid = uid_of_dir ctx path in
  if ffs == ctx.fs then fail "cannot syntactically mount a file system on itself";
  Hashtbl.replace ctx.syn_mounts uid ffs

let sumount_fs (ctx : Ctx.t) path =
  match Uidmap.uid_of_path ctx.uids (Vpath.normalize path) with
  | Some uid -> Hashtbl.remove ctx.syn_mounts uid
  | None -> ()

let syntactic_mount_points (ctx : Ctx.t) =
  Hashtbl.fold
    (fun uid _ acc ->
      match Uidmap.path_of_uid ctx.uids uid with Some p -> p :: acc | None -> acc)
    ctx.syn_mounts []
  |> List.sort compare

let sumount (ctx : Ctx.t) path ~ns_id =
  let uid = uid_of_dir ctx path in
  Mount_table.sumount ctx.mounts ~uid ~ns_id;
  Sync.sync_all ctx

let mounted_at (ctx : Ctx.t) path =
  match Uidmap.uid_of_path ctx.uids path with
  | None -> []
  | Some uid ->
      List.map (fun ns -> ns.Namespace.ns_id) (Mount_table.mounted ctx.mounts ~uid)

let refresh_mounts (ctx : Ctx.t) =
  if Mount_table.mount_points ctx.mounts <> [] then Sync.sync_all ctx

(* -- fault tolerance ---------------------------------------------------------- *)

let clock (ctx : Ctx.t) = ctx.clock

let remote_failures (ctx : Ctx.t) = ctx.remote_failures

let stale_serves (ctx : Ctx.t) = ctx.stale_serves

type mount_health = {
  mh_path : string;
  mh_ns : string;
  mh_health : Namespace.health option;
}

let mount_status (ctx : Ctx.t) =
  List.concat_map
    (fun uid ->
      match Uidmap.path_of_uid ctx.uids uid with
      | None -> []
      | Some path ->
          List.map
            (fun (ns_id, h) -> { mh_path = path; mh_ns = ns_id; mh_health = h })
            (Mount_table.health ctx.mounts ~uid))
    (Mount_table.mount_points ctx.mounts)

let stale_remotes (ctx : Ctx.t) path =
  match Ctx.semdir_of_path ctx path with
  | None -> []
  | Some sd -> List.filter (fun r -> r.Semdir.rr_stale) sd.Semdir.transient_remote

(* -- incremental-maintenance introspection ------------------------------------ *)

let result_cache_stats (ctx : Ctx.t) = Rescache.stats ctx.rescache

let reset_result_cache_stats (ctx : Ctx.t) = Rescache.reset_stats ctx.rescache

let scope_generation (ctx : Ctx.t) = ctx.scope_generation

(* -- observability ------------------------------------------------------------ *)

let metrics (ctx : Ctx.t) = ctx.instr.Instr.metrics

let tracer (ctx : Ctx.t) = ctx.instr.Instr.tracer

let flight (ctx : Ctx.t) = ctx.instr.Instr.flight

let instr (ctx : Ctx.t) = ctx.instr

(* -- accounting --------------------------------------------------------------- *)

type space = {
  semdir_bytes : int;
  uidmap_bytes : int;
  depgraph_bytes : int;
  index_bytes : int;
  fs_metadata_bytes : int;
}

let space (ctx : Ctx.t) =
  {
    semdir_bytes =
      Hashtbl.fold (fun _ sd acc -> acc + Semdir.approx_bytes sd) ctx.semdirs 0
      + Hashtbl.fold (fun _ sd acc -> acc + Semdir.approx_bytes sd) ctx.skeletons 0;
    uidmap_bytes = Uidmap.approx_bytes ctx.uids;
    depgraph_bytes = Depgraph.approx_bytes ctx.deps;
    index_bytes = Index.index_bytes ctx.index;
    fs_metadata_bytes = Fs.metadata_bytes ctx.fs;
  }

let hac_overhead_bytes s = s.semdir_bytes + s.uidmap_bytes + s.depgraph_bytes

let semdir_count (ctx : Ctx.t) = Hashtbl.length ctx.semdirs
