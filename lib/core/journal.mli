(** The checkpointed directory journal: sealed records, epoch-stamped
    segments, and atomic checkpoint blobs.

    A crash can tear the last record of an append-only log, and bit rot can
    corrupt any of them; replay must restore every intact record and skip
    the rest rather than fail or silently mis-parse.  Each record is one
    line of the form [body #hhhhhhhh] — the body followed by a fixed-width
    hex checksum of it — so the reader can verify integrity line by line.

    Records live in a {e chain} of files under [/.hac]: [dirs.log] is the
    epoch-0 segment (the historical name), [seg-NNNNNN.log] the later ones,
    and [ckpt-NNNNNN.img] an atomically-published checkpoint superseding
    every epoch up to its stamp.  Recovery reads the newest checkpoint that
    proves readable plus only the segments newer than it, so remount cost
    is bounded by the delta since the last checkpoint, not by history
    length.  See [docs/recovery.md]. *)

val checksum : string -> int
(** 32-bit FNV-1a checksum of a record body. *)

val seal : string -> string
(** [seal body] is the on-disk form of the record (no trailing newline):
    the body plus its checksum suffix. *)

type line = Seal.line =
  | Valid of string  (** Intact record; carries the body. *)
  | Corrupt of string  (** Checksum missing or wrong; carries the raw line. *)
  | Blank  (** Empty/whitespace line (e.g. after a trailing newline). *)

val parse : string -> line
(** Classify one journal line.  A line written by {!seal} parses back to
    [Valid body]; anything torn, truncated or scribbled over is [Corrupt]. *)

(** {1 Record replay}

    Record grammar (one sealed line each): [D <uid> <path>] directory
    created, [M <uid> <path>] directory moved here (subtree follows),
    [S <uid>] directory became semantic, [X <uid>] directory removed,
    [F <path>] file content changed since the last settle (the dirty
    delta a fast mount must re-read instead of rescanning the tree). *)

type replay = {
  map : (int, string) Hashtbl.t;  (** uid → current path. *)
  sem : (int, unit) Hashtbl.t;  (** uids flagged semantic. *)
  files : (string, unit) Hashtbl.t;  (** Paths named by [F] records. *)
  mutable applied : int;  (** Intact records applied. *)
  mutable corrupt : int;  (** Lines failing their checksum. *)
  mutable malformed : int;  (** Sealed lines whose body didn't parse. *)
  mutable seg_applied : int;
      (** Of [applied], how many came from post-checkpoint segments (the
          delta a checkpoint did not cover) — filled by {!replay_chain}. *)
  mutable moved : int;  (** [M]/[X] records applied (namespace surgery). *)
  mutable seg_moved : int;
      (** Of [moved], how many came from post-checkpoint segments — when
          non-zero, checkpoint-resident paths may be stale and a fast
          mount must fall back to the full oracle. *)
}

val replay_create : unit -> replay
(** An empty replay state. *)

val replay_text : replay -> string -> unit
(** Apply every intact record of one segment's text, accumulating counts.
    Never raises, whatever the text contains. *)

val semantic_entries : replay -> (int * string) list
(** The (uid, path) pairs flagged semantic and still present, sorted. *)

(** {1 Segments, checkpoints, epochs} *)

val meta_root : string
(** The metadata area the chain lives under (["/.hac"]). *)

val segment_name : int -> string
val segment_path : int -> string
(** File name/path of a segment ([dirs.log] for epoch 0). *)

val checkpoint_name : int -> string
val checkpoint_path : int -> string
(** File name/path of the checkpoint covering epochs [<= n]. *)

val checkpoint_tmp : string
(** Scratch path a checkpoint is written to before its commit rename. *)

type file_class = Segment of int | Checkpoint of int | Other

val classify : string -> file_class
(** What role a file name under {!meta_root} plays in the chain.  Epoch
    numbers of any width parse ([seg-1000000.log] is [Segment 1000000],
    not [Other]); ordering is by parsed epoch, never by file name. *)

val sd_uid_of_name : string -> int option
(** The uid of a per-directory structure file name ([sd-<uid>.<suffix>]). *)

val scan : Hac_vfs.Fs.t -> (int * string) list * (int * string) list
(** All (epoch, path) segments and checkpoints on disk, each ascending by
    epoch.  An absent metadata area scans as empty. *)

val current_epoch : Hac_vfs.Fs.t -> int
(** The epoch new records must append to: the highest segment epoch, or one
    past the highest checkpoint, whichever is greater (0 on a fresh disk). *)

(** {1 Checkpoint blobs}

    A checkpoint file is an {!Hac_vfs.Image} dump wrapped in a one-line
    [HACCKPT1 <len> <crc>] header, verified as a unit before any of it is
    believed — a torn or corrupted checkpoint is rejected whole and
    recovery falls back to the previous chain. *)

val seal_blob : string -> string
(** Wrap a payload in the checksummed header. *)

val open_blob : string -> (string, string) result
(** Verify and unwrap; [Error] on truncation, corruption or bad header. *)

val load_checkpoint : Hac_vfs.Fs.t -> string -> (Hac_vfs.Fs.t, string) result
(** Read, verify and load one checkpoint file into its image tree. *)

(** {1 The chain: what recovery reads} *)

type chain = {
  checkpoint : (int * Hac_vfs.Fs.t) option;
      (** Newest checkpoint that proved readable, with its image. *)
  invalid_checkpoints : int;  (** Checkpoint files that failed to load. *)
  segments : (int * string) list;
      (** Texts of the segments newer than the checkpoint, ascending. *)
  skipped_segments : int;
      (** Older segments the checkpoint supersedes (not replayed). *)
}

val read_chain : Hac_vfs.Fs.t -> chain
(** Resolve the on-disk chain: pick the base checkpoint and collect the
    segment texts recovery must replay. *)

val replay_chain : chain -> replay
(** Replay the checkpoint's consolidated log, then every newer segment. *)

val max_uid : Hac_vfs.Fs.t -> int
(** Highest uid mentioned anywhere in the on-disk metadata (segments,
    checkpoint, structure files) — a recovering instance allocates its own
    uids strictly above this so they never alias a previous life's. *)
