(** Checksummed journal records for the [dirs.log] metadata journal.

    A crash can tear the last record of an append-only log, and bit rot can
    corrupt any of them; replay must restore every intact record and skip
    the rest rather than fail or silently mis-parse.  Each record is one
    line of the form [body #hhhhhhhh] — the body followed by a fixed-width
    hex checksum of it — so the reader can verify integrity line by line. *)

val checksum : string -> int
(** 32-bit FNV-1a checksum of a record body. *)

val seal : string -> string
(** [seal body] is the on-disk form of the record (no trailing newline):
    the body plus its checksum suffix. *)

type line =
  | Valid of string  (** Intact record; carries the body. *)
  | Corrupt of string  (** Checksum missing or wrong; carries the raw line. *)
  | Blank  (** Empty/whitespace line (e.g. after a trailing newline). *)

val parse : string -> line
(** Classify one journal line.  A line written by {!seal} parses back to
    [Valid body]; anything torn, truncated or scribbled over is [Corrupt]. *)
