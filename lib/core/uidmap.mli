(** The global map of unique directory identifiers to path names.

    Section 2.5: queries store directory {e identifiers}, not path names, so
    when a referenced directory is renamed only this map is updated and every
    query referring to it stays valid.  The map covers every directory in the
    file system (the paper's HAC tracks all directory names globally). *)

type t
(** One map instance. *)

val create : unit -> t
(** A map containing only the root directory. *)

val root_uid : int
(** UID of ["/"] (0). *)

val register : t -> string -> int
(** UID for the directory path, allocating a fresh one when unknown. *)

val reserve : t -> int -> unit
(** Ensure every uid allocated from now on is strictly greater than [n].
    Recovery reserves past everything the on-disk metadata mentions so a
    new instance's uids never alias a previous life's (stale structure
    files keyed by old uids must stay unreadable, not be misread). *)

val adopt : t -> int -> string -> unit
(** [adopt t uid path] binds the directory to a {e given} uid — the
    fast-mount path, replaying the journal's uid→path map so recovered
    structure files and queries keep resolving.  Displaces any stale binding
    of either side and reserves past [uid].  Raises [Invalid_argument] on a
    negative uid. *)

val uid_of_path : t -> string -> int option
(** Lookup by (normalized) path. *)

val path_of_uid : t -> int -> string option
(** Current path of a registered directory. *)

val rename : t -> old_path:string -> new_path:string -> unit
(** Rewrite the entry for [old_path] {e and every registered descendant} to
    live under [new_path] — the single cheap update that replaces fixing up
    all dependent queries. *)

val remove : t -> string -> int option
(** Forget one directory (returns its uid). *)

val remove_subtree : t -> string -> int list
(** Forget a directory and all registered descendants; returns their uids. *)

val fold : (int -> string -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (uid, path) pairs in unspecified order. *)

val count : t -> int
(** Number of registered directories. *)

val approx_bytes : t -> int
(** Estimated memory footprint, for space accounting. *)
