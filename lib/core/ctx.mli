(** Shared mutable state of one HAC file system instance.

    Owned by {!Hac}; {!Sync} reads and updates it.  Not part of the stable
    public API — use {!Hac} unless you are extending the core. *)

type t = {
  fs : Hac_vfs.Fs.t;  (** The underlying hierarchical file system. *)
  index : Hac_index.Index.t;  (** The CBA mechanism (Glimpse stand-in). *)
  uids : Uidmap.t;  (** Global directory-identifier map. *)
  semdirs : (int, Semdir.t) Hashtbl.t;  (** Semantic state by directory uid. *)
  deps : Hac_depgraph.Depgraph.t;  (** Dependency DAG over directory uids. *)
  mounts : Hac_remote.Mount_table.t;  (** Semantic mount points. *)
  namespaces : (string, Hac_remote.Namespace.t) Hashtbl.t;
      (** Every namespace ever mounted, by ns_id, for fetching remote links. *)
  syn_mounts : (int, Hac_vfs.Fs.t) Hashtbl.t;
      (** Syntactic mount points (section 3): foreign file systems grafted
          read-only at a local directory, keyed by its uid. *)
  file_meta : (string, Hac_vfs.Fs.stat) Hashtbl.t;
      (** Per-file bookkeeping initialised at creation time — the paper's
          HAC sets up the open file-descriptor slot and attribute-cache
          entry for every new file (its Andrew phase-2 overhead). *)
  skeletons : (int, Semdir.t) Hashtbl.t;
      (** Pre-initialised (empty) semantic state for {e every} directory —
          the paper's HAC creates and stores query/link-set structures at
          [mkdir] time, which is the dominant Andrew phase-1 overhead.  A
          skeleton is promoted into {!semdirs} by [smkdir]/[schquery]. *)
  dirty : (string, unit) Hashtbl.t;
      (** Paths whose index entry is stale (data consistency, section 2.4). *)
  mutable alive : bool;
      (** False once the instance is shut down; its event subscription (which
          cannot be physically removed from the bus) goes inert. *)
  mutable maintenance : bool;
      (** True while HAC itself mutates the fs; suppresses event handling. *)
  mutable auto_sync : bool;
      (** Eagerly reindex and re-evaluate after every mutation. *)
  mutable reindex_every : int option;
      (** Periodic data consistency: reindex after this many mutations. *)
  mutable ops_since_reindex : int;  (** Mutations since the last reindex. *)
  mutable sync_stamp : int;  (** Logical clock of re-evaluations. *)
  clock : Hac_fault.Clock.t;
      (** Virtual wall clock shared with resilience policies: backoff delays
          and breaker probe intervals advance/read it, never real time. *)
  mutable remote_failures : int;
      (** Failed namespace calls observed during re-evaluations. *)
  mutable stale_serves : int;
      (** Last-good remote entries re-served because their namespace was
          unavailable (graceful degradation). *)
  rescache : Rescache.t;
      (** Per-directory query-result cache; entries are validated against
          [scope_generation]. *)
  mutable scope_generation : int;
      (** Bumped on every mutation that can change any query result (index
          updates, renames, link/prohibition edits, mounts, resyncs) — the
          cache-freshness clock. *)
  mutable needs_full_sync : bool;
      (** Set by structural events (renames, link edits, mount changes,
          directory removal) whose effect on query results is not captured
          by the reindex delta; the next settle falls back to a full
          {!Sync.sync_all} and clears it. *)
  mutable pass_caches : bool;
      (** Whether settle passes build their shared per-pass evaluation
          caches ({!Hac_index.Search.term_memo} and
          {!Hac_index.Search.doc_cache}).  On by default; an ablation knob
          for benchmarks comparing against the uncached engine. *)
  mutable durability : [ `Always | `Batch ];
      (** When journal appends are flushed to the simulated disk: [`Always]
          fsyncs each append as it happens, [`Batch] (the default) fsyncs
          once per settle, before the settle acknowledges completion. *)
  mutable journal_epoch : int;
      (** Epoch of the segment journal appends go to; [-1] until first
          resolved from the on-disk chain (see {!Journal.current_epoch}). *)
  mutable store : Hac_store.Store.t option;
      (** The durable storage tier, when enabled ({!Hac.enable_store}):
          content block store behind a byte-bounded cache, on-disk postings
          segments, and the fast-mount image.  [None] (the default) keeps
          every structure memory-resident as before. *)
  instr : Instr.t;
      (** This instance's observability surface: metrics registry, tracer
          (virtual-clock timestamps) and pre-resolved instrument handles. *)
}

val create :
  ?block_size:int ->
  ?stem:bool ->
  ?transducer:Hac_index.Transducer.t ->
  ?auto_sync:bool ->
  ?reindex_every:int ->
  Hac_vfs.Fs.t ->
  t
(** Fresh state over the given file system (no subscriptions are set up —
    {!Hac.of_fs} does that). *)

val reader : t -> string -> string option
(** Content reader for verification ([None] on any error, including a read
    the current user is not permitted).  With the storage tier on, clean
    (non-dirty) indexed paths are served from the block store through its
    cache; dirty paths, unknown paths and damaged blocks read the file
    itself. *)

val semdir_of_uid : t -> int -> Semdir.t option
(** Semantic state of a directory, if it has a query. *)

val semdir_of_path : t -> string -> Semdir.t option
(** Same, by path. *)

val with_maintenance : t -> (unit -> 'a) -> 'a
(** Run HAC's own fs mutations with event handling suppressed. *)

val bump_generation : t -> unit
(** Invalidate all cached query results (cheap: increments the clock). *)

val force_full_sync : t -> unit
(** Mark the instance as needing a full re-evaluation on the next settle
    (also bumps the generation — a structural change invalidates cached
    results too). *)
