type doc = { title : string; uri : string; body : string }

let create ?(max_results = 10) ns_id docs =
  (* Precompute term frequencies per document; corpora are static. *)
  let freqs =
    List.map
      (fun d ->
        let tf = Hashtbl.create 64 in
        Hac_index.Tokenizer.iter_words (d.title ^ " " ^ d.body) (fun w ->
            Hashtbl.replace tf w (1 + Option.value (Hashtbl.find_opt tf w) ~default:0));
        (d, tf))
      docs
  in
  let by_uri = Hashtbl.create (List.length docs) in
  List.iter (fun d -> Hashtbl.replace by_uri d.uri d.body) docs;
  let search q =
    let words =
      String.split_on_char ' ' (String.lowercase_ascii q)
      |> List.filter (fun w -> w <> "")
    in
    if words = [] then []
    else
      freqs
      |> List.filter_map (fun (d, tf) ->
             let score =
               List.fold_left
                 (fun acc w ->
                   match acc with
                   | None -> None
                   | Some s -> (
                       match Hashtbl.find_opt tf w with
                       | None | Some 0 -> None
                       | Some c -> Some (s + c)))
                 (Some 0) words
             in
             Option.map (fun s -> (s, d)) score)
      |> List.sort (fun (a, da) (b, db) ->
             match compare b a with 0 -> compare da.uri db.uri | c -> c)
      |> List.filteri (fun i _ -> i < max_results)
      |> List.map (fun (_, d) ->
             let name =
               match String.rindex_opt d.uri '/' with
               | Some i when i + 1 < String.length d.uri ->
                   String.sub d.uri (i + 1) (String.length d.uri - i - 1)
               | _ -> d.title
             in
             { Namespace.name; uri = d.uri; summary = d.title })
  in
  Namespace.make ~ns_id ~lang:Namespace.Keywords ~search
    ~fetch:(fun uri -> Hashtbl.find_opt by_uri uri)
    ~list_all:(fun () -> [])
    ()
