type t = (int, Namespace.t list) Hashtbl.t

let create () = Hashtbl.create 16

let mounted t ~uid = Option.value (Hashtbl.find_opt t uid) ~default:[]

let smount t ~uid ns =
  let others =
    List.filter (fun n -> n.Namespace.ns_id <> ns.Namespace.ns_id) (mounted t ~uid)
  in
  Hashtbl.replace t uid (others @ [ ns ])

let sumount t ~uid ~ns_id =
  match List.filter (fun n -> n.Namespace.ns_id <> ns_id) (mounted t ~uid) with
  | [] -> Hashtbl.remove t uid
  | rest -> Hashtbl.replace t uid rest

let unmount_all t ~uid = Hashtbl.remove t uid

let is_mount_point t ~uid = mounted t ~uid <> []

let mount_points t =
  Hashtbl.fold (fun uid _ acc -> uid :: acc) t [] |> List.sort compare

let query t ~uid q =
  List.concat_map
    (fun ns -> List.map (fun e -> (ns.Namespace.ns_id, e)) (ns.Namespace.search q))
    (mounted t ~uid)

let health t ~uid =
  List.map (fun ns -> (ns.Namespace.ns_id, Namespace.health ns)) (mounted t ~uid)

let fetch t ~uid ~uri =
  let rec go = function
    | [] -> None
    | ns :: rest -> (
        match ns.Namespace.fetch uri with Some c -> Some c | None -> go rest)
  in
  go (mounted t ~uid)
