(** Remote name spaces: anything that can answer a query with results.

    Section 3 of the paper uses "name space" for a traditional file system, a
    CBA mechanism, or another HAC file system.  A {!t} is the uniform
    interface semantic mount points talk to: submit a query string in the
    namespace's own language, get entries back, optionally fetch an entry's
    contents.  Implementations include simulated remote HAC file systems
    ({!Remote_fs}) and a simulated web search engine ({!Web_search}).

    The paper treats these remotes as slow and intermittently unavailable;
    {!with_policy} wraps any namespace in the corresponding defences —
    bounded retry with exponential backoff, a per-call deadline budget and a
    three-state circuit breaker — while {!with_faults} injects the failures
    themselves for tests and benchmarks (see {!Hac_fault.Fault}). *)

type entry = {
  name : string;  (** Display name (used as the symbolic link name). *)
  uri : string;  (** Stable identifier within the namespace. *)
  summary : string;  (** One-line description shown to users. *)
}

type lang =
  | Keywords  (** Space-separated required keywords (web engines). *)
  | Hac_syntax  (** The full HAC query language (other HAC systems). *)

type health = {
  breaker : Hac_fault.Breaker.state;  (** Circuit state as of the last call. *)
  consecutive_failures : int;  (** Current failure streak. *)
  total_failures : int;  (** Failed provider attempts (incl. retries). *)
  total_retries : int;  (** Retry attempts issued. *)
  total_calls : int;  (** Guarded calls requested by HAC. *)
  breaker_trips : int;  (** Times the breaker has opened. *)
  last_error : string option;  (** Most recent failure description. *)
}
(** Resilience counters of a {!with_policy}-wrapped namespace. *)

type t = {
  ns_id : string;  (** Unique identifier of this namespace. *)
  lang : lang;  (** Query language this namespace understands. *)
  search : string -> entry list;  (** Evaluate a query, best first. *)
  fetch : string -> string option;  (** Contents of an entry by uri. *)
  list_all : unit -> entry list;
      (** Enumerate everything, or [[]] when the namespace cannot (e.g. a
          web search engine). *)
  health : (unit -> health) option;
      (** Present on resilience-wrapped namespaces; use {!health}. *)
}

exception Unavailable of { ns_id : string; reason : string }
(** Raised by a {!with_policy}-wrapped namespace when a call cannot be
    served: the circuit is open, or retries were exhausted.  The scope
    engine catches this and degrades to the last-good cached result rather
    than letting a flaky remote break re-evaluation. *)

val make :
  ns_id:string ->
  lang:lang ->
  search:(string -> entry list) ->
  fetch:(string -> string option) ->
  list_all:(unit -> entry list) ->
  unit ->
  t
(** Plain constructor (no health state).  Prefer this over a record literal
    so namespace implementations keep building when resilience fields
    evolve. *)

val health : t -> health option
(** Current resilience counters; [None] for unwrapped namespaces. *)

type stats = { queries : int; fetches : int }
(** Accumulated call counts of an instrumented namespace. *)

val instrument : t -> t * (unit -> stats)
(** Wrap a namespace so calls are counted; returns the wrapper and a stats
    reader.  Used by tests and by the benchmarks to show remote traffic. *)

(** {1 Resilience} *)

type policy = {
  max_retries : int;  (** Retries after the first attempt. *)
  backoff : Hac_fault.Backoff.t;  (** Delay schedule between retries. *)
  call_budget : float;  (** Virtual-seconds deadline per attempt; a slower
                            "success" is treated as a timeout failure. *)
  breaker : Hac_fault.Breaker.config;  (** Circuit-breaker tuning. *)
  seed : int;  (** Jitter seed (determinism). *)
}

val default_policy : policy
(** 2 retries, default backoff, 2 s per-call budget, default breaker. *)

val with_policy :
  ?policy:policy -> ?metrics:Hac_obs.Metrics.t -> clock:Hac_fault.Clock.t -> t -> t
(** Wrap every provider call in the retry/deadline/breaker discipline.
    All time is virtual: backoff delays and probe intervals advance/read
    [clock].  Any exception from the underlying namespace counts as a
    failure; the wrapper itself only ever raises {!Unavailable}.  The
    result carries live {!health}.

    Accounting goes to [metrics] (or a private registry when omitted)
    under [ns.<id>.calls] / [.failures] / [.retries] counters, a
    [ns.<id>.breaker.state] gauge (0 closed, 1 half-open, 2 open) plus a
    [.breaker.transitions] counter, and a [ns.<id>.deadline_slack_s]
    histogram of budget remaining on each success; {!health} reads these
    same instruments back. *)

val with_faults : Hac_fault.Fault.t -> t -> t
(** Route every provider call through the fault injector: latency is
    charged to the injector's clock, failing plans raise, and fetched
    payloads pass through {!Hac_fault.Fault.mangle} (corruption).  Compose
    as [with_policy ~clock (with_faults inj ns)] so the policy sees the
    injected weather. *)

val static : ns_id:string -> (string * string * string) list -> t
(** [static ~ns_id docs] is an in-memory namespace over [(name, uri,
    content)] triples whose query language is conjunctive whole-word match
    (every space-separated query word must occur). *)
