(** Semantic mount points: namespaces attached to directories.

    A semantic mount point (section 3.1) connects queries under a local
    directory to a remote namespace; a {e multiple} semantic mount point
    (section 3.2) attaches several namespaces to the same directory, whose
    query results are treated as disjoint unions.  Mount points are keyed by
    directory UID so renames don't disturb them. *)

type t
(** The mount registry of one HAC file system. *)

val create : unit -> t
(** Empty registry. *)

val smount : t -> uid:int -> Namespace.t -> unit
(** Attach a namespace at the directory.  Attaching a namespace with the
    same [ns_id] again replaces it (remount). *)

val sumount : t -> uid:int -> ns_id:string -> unit
(** Detach one namespace; no-op when absent. *)

val unmount_all : t -> uid:int -> unit
(** Detach everything at the directory (e.g. when it is removed). *)

val mounted : t -> uid:int -> Namespace.t list
(** Namespaces attached at the directory, in mount order. *)

val is_mount_point : t -> uid:int -> bool
(** Whether at least one namespace is attached. *)

val mount_points : t -> int list
(** UIDs that currently have mounts, sorted. *)

val query : t -> uid:int -> string -> (string * Namespace.entry) list
(** Evaluate the query in every namespace mounted at the directory and
    concatenate the answers tagged with their [ns_id] — the disjoint union
    of section 3.2. *)

val health : t -> uid:int -> (string * Namespace.health option) list
(** Per-namespace resilience state at the directory, in mount order;
    [None] for namespaces not wrapped with {!Namespace.with_policy}. *)

val fetch : t -> uid:int -> uri:string -> string option
(** Fetch an entry's contents from whichever mounted namespace recognises
    the uri (first match in mount order). *)
