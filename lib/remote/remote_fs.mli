(** A remote HAC/UNIX file system exposed as a queryable namespace.

    Wraps a {!Hac_vfs.Fs.t} and its content index so a {e local} HAC can
    semantically mount it (section 3): queries in the HAC query language are
    evaluated against the remote index, entries identify remote files by a
    [hacfs://<ns_id><path>] uri, and [fetch] reads the remote file.  This is
    also how "another user's personal HAC file system" is shared. *)

val uri_of_path : ns_id:string -> string -> string
(** The uri scheme used for entries: [hacfs://<ns_id><absolute path>].
    Raises [Invalid_argument] when [ns_id] is empty or contains ['/'] —
    such an id would make the uri ambiguous to split. *)

val path_of_uri : ns_id:string -> string -> string option
(** Inverse of {!uri_of_path} for uris belonging to this namespace.
    Raises [Invalid_argument] on the same bad ids as {!uri_of_path}. *)

val create : ns_id:string -> Hac_vfs.Fs.t -> Hac_index.Index.t -> Namespace.t
(** [create ~ns_id fs index] exposes [fs] through [index].  The query
    language is the full HAC query syntax except directory references, which
    evaluate to nothing remotely.  [list_all] enumerates every indexed
    file. *)
