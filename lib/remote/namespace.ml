type entry = { name : string; uri : string; summary : string }

type lang = Keywords | Hac_syntax

type health = {
  breaker : Hac_fault.Breaker.state;
  consecutive_failures : int;
  total_failures : int;
  total_retries : int;
  total_calls : int;
  breaker_trips : int;
  last_error : string option;
}

type t = {
  ns_id : string;
  lang : lang;
  search : string -> entry list;
  fetch : string -> string option;
  list_all : unit -> entry list;
  health : (unit -> health) option;
}

exception Unavailable of { ns_id : string; reason : string }

let () =
  Printexc.register_printer (function
    | Unavailable { ns_id; reason } ->
        Some (Printf.sprintf "Namespace.Unavailable(%s: %s)" ns_id reason)
    | _ -> None)

let make ~ns_id ~lang ~search ~fetch ~list_all () =
  { ns_id; lang; search; fetch; list_all; health = None }

let health ns = Option.map (fun f -> f ()) ns.health

type stats = { queries : int; fetches : int }

let instrument ns =
  let queries = ref 0 and fetches = ref 0 in
  let wrapped =
    {
      ns with
      search =
        (fun q ->
          incr queries;
          ns.search q);
      fetch =
        (fun uri ->
          incr fetches;
          ns.fetch uri);
    }
  in
  (wrapped, fun () -> { queries = !queries; fetches = !fetches })

(* -- resilience policy ----------------------------------------------------- *)

type policy = {
  max_retries : int;
  backoff : Hac_fault.Backoff.t;
  call_budget : float;
  breaker : Hac_fault.Breaker.config;
  seed : int;
}

let default_policy =
  {
    max_retries = 2;
    backoff = Hac_fault.Backoff.default;
    call_budget = 2.0;
    breaker = Hac_fault.Breaker.default_config;
    seed = 0;
  }

let describe_exn = function
  | Unavailable { reason; _ } -> reason
  | Hac_fault.Fault.Injected op -> "injected fault on " ^ op
  | e -> Printexc.to_string e

let breaker_code = function
  | Hac_fault.Breaker.Closed -> 0.0
  | Hac_fault.Breaker.Half_open -> 1.0
  | Hac_fault.Breaker.Open -> 2.0

let with_policy ?(policy = default_policy) ?metrics ~clock ns =
  (* Resilience accounting lives in a metrics registry — the caller's if
     given (so `metrics` in the shell sees every namespace), else a private
     one.  [health] below reads these instruments back, so there is exactly
     one copy of the truth. *)
  let registry =
    match metrics with Some m -> m | None -> Hac_obs.Metrics.create ()
  in
  let instr what = Hac_obs.Metrics.counter registry ("ns." ^ ns.ns_id ^ "." ^ what) in
  let c_calls = instr "calls"
  and c_failures = instr "failures"
  and c_retries = instr "retries"
  and c_transitions = instr "breaker.transitions" in
  let g_state = Hac_obs.Metrics.gauge registry ("ns." ^ ns.ns_id ^ ".breaker.state") in
  let h_slack =
    Hac_obs.Metrics.histogram registry ("ns." ^ ns.ns_id ^ ".deadline_slack_s")
  in
  let breaker =
    Hac_fault.Breaker.create ~config:policy.breaker
      ~on_transition:(fun _ next ->
        Hac_obs.Metrics.incr c_transitions;
        Hac_obs.Metrics.set g_state (breaker_code next))
      ()
  in
  let last_error = ref None in
  let unavailable reason = raise (Unavailable { ns_id = ns.ns_id; reason }) in
  (* One guarded provider call: consult the breaker, then try with bounded
     retries, exponential backoff and a per-call virtual-time budget.  Every
     exception the raw provider raises — including injected faults — counts
     as a failure; a call that "succeeds" but blows the budget counts as a
     timeout.  The caller sees either the result or [Unavailable]. *)
  let call op f =
    Hac_obs.Metrics.incr c_calls;
    if not (Hac_fault.Breaker.allow breaker ~now:(Hac_fault.Clock.now clock)) then begin
      last_error := Some "circuit open";
      unavailable "circuit open"
    end;
    let rec attempt n =
      let started = Hac_fault.Clock.now clock in
      let outcome = match f () with v -> Ok v | exception e -> Error (describe_exn e) in
      let verdict =
        match outcome with
        | Ok _ when Hac_fault.Clock.now clock -. started > policy.call_budget ->
            Error
              (Printf.sprintf "deadline exceeded (%.2fs > %.2fs budget)"
                 (Hac_fault.Clock.now clock -. started)
                 policy.call_budget)
        | v -> v
      in
      (* Slack is recorded for every attempt, not just successes: a
         timed-out attempt contributes its (negative) slack, so the
         histogram reflects how close the budget actually runs rather than
         skewing toward the calls that made it. *)
      Hac_obs.Metrics.observe h_slack
        (policy.call_budget -. (Hac_fault.Clock.now clock -. started));
      match verdict with
      | Ok v ->
          Hac_fault.Breaker.record_success breaker;
          v
      | Error reason ->
          Hac_obs.Metrics.incr c_failures;
          last_error := Some reason;
          Hac_fault.Breaker.record_failure breaker ~now:(Hac_fault.Clock.now clock);
          if n < policy.max_retries && Hac_fault.Breaker.allow breaker ~now:(Hac_fault.Clock.now clock)
          then begin
            Hac_obs.Metrics.incr c_retries;
            Hac_fault.Clock.advance clock (Hac_fault.Backoff.delay ~seed:policy.seed policy.backoff ~attempt:n);
            attempt (n + 1)
          end
          else
            unavailable
              (Printf.sprintf "%s failed: %s (after %d attempt%s)" op reason
                 (n + 1)
                 (if n = 0 then "" else "s"))
    in
    attempt 0
  in
  let read_health () =
    {
      breaker = Hac_fault.Breaker.state breaker;
      consecutive_failures = Hac_fault.Breaker.consecutive_failures breaker;
      total_failures = Hac_obs.Metrics.count c_failures;
      total_retries = Hac_obs.Metrics.count c_retries;
      total_calls = Hac_obs.Metrics.count c_calls;
      breaker_trips = Hac_fault.Breaker.trips breaker;
      last_error = !last_error;
    }
  in
  {
    ns with
    search = (fun q -> call "search" (fun () -> ns.search q));
    fetch = (fun uri -> call "fetch" (fun () -> ns.fetch uri));
    list_all = (fun () -> call "list_all" ns.list_all);
    health = Some read_health;
  }

let with_faults inj ns =
  {
    ns with
    search = (fun q -> Hac_fault.Fault.guard inj ~op:"search" (fun () -> ns.search q));
    fetch =
      (fun uri ->
        Hac_fault.Fault.guard inj ~op:"fetch" (fun () ->
            Option.map (Hac_fault.Fault.mangle inj) (ns.fetch uri)));
    list_all = (fun () -> Hac_fault.Fault.guard inj ~op:"list_all" ns.list_all);
  }

(* -- static namespaces ----------------------------------------------------- *)

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let static ~ns_id docs =
  let by_uri = Hashtbl.create (List.length docs) in
  List.iter (fun (_, uri, content) -> Hashtbl.replace by_uri uri content) docs;
  let entry_of (name, uri, content) = { name; uri; summary = first_line content } in
  let query_words q =
    String.split_on_char ' ' (String.lowercase_ascii q)
    |> List.filter (fun w -> w <> "")
  in
  let matches q content =
    let words = query_words q in
    words <> []
    && List.for_all (fun w -> Hac_index.Tokenizer.contains_word content w) words
  in
  make ~ns_id ~lang:Keywords
    ~search:(fun q ->
      List.filter_map
        (fun ((_, _, content) as doc) ->
          if matches q content then Some (entry_of doc) else None)
        docs)
    ~fetch:(fun uri -> Hashtbl.find_opt by_uri uri)
    ~list_all:(fun () -> List.map entry_of docs)
    ()
