module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Index = Hac_index.Index
module Search = Hac_index.Search
module Fileset = Hac_bitset.Fileset

(* A '/' inside the namespace id would make "hacfs://<ns_id><path>" ambiguous
   to split, so it is rejected wherever an id enters this module. *)
let check_ns_id ns_id =
  if ns_id = "" || String.contains ns_id '/' then
    invalid_arg (Printf.sprintf "Remote_fs: bad ns_id %S (must be non-empty, no '/')" ns_id)

let uri_of_path ~ns_id path =
  check_ns_id ns_id;
  "hacfs://" ^ ns_id ^ Vpath.normalize path

let path_of_uri ~ns_id uri =
  check_ns_id ns_id;
  let prefix = "hacfs://" ^ ns_id ^ "/" in
  let plen = String.length prefix in
  if String.length uri >= plen && String.sub uri 0 plen = prefix then
    Some (Vpath.normalize (String.sub uri (plen - 1) (String.length uri - plen + 1)))
  else None

let create ~ns_id fs index =
  check_ns_id ns_id;
  let reader path = try Some (Fs.read_file fs path) with Hac_vfs.Errno.Error _ -> None in
  let attr_match key value id =
    match Index.doc_path index id with
    | None -> false
    | Some path -> Vpath.matches_builtin_attr ~key ~value path
  in
  let env =
    {
      Hac_query.Eval.universe = (fun () -> Index.universe index);
      word = (fun ?within w -> Search.search_word ?within index reader w);
      phrase = (fun ?within ws -> Search.search_phrase ?within index reader ws);
      approx =
        (fun ?within w k -> Search.search_approx ?within index reader ~word:w ~errors:k);
      attr =
        (fun ?within:_ key value ->
          Fileset.filter (attr_match key value) (Index.universe index));
      regex = (fun ?within r -> Search.search_regex ?within index reader r);
      dirref = (fun ?within:_ _ -> Fileset.empty);
    }
  in
  let entry_of_id id =
    match Index.doc_path index id with
    | None -> None
    | Some path ->
        Some
          {
            Namespace.name = Vpath.basename path;
            uri = uri_of_path ~ns_id path;
            summary = path;
          }
  in
  let search q =
    match Hac_query.Parser.parse_result q with
    | Error _ -> []
    | Ok ast ->
        Fileset.fold
          (fun id acc -> match entry_of_id id with Some e -> e :: acc | None -> acc)
          (Hac_query.Eval.eval env ast) []
        |> List.rev
  in
  let fetch uri =
    match path_of_uri ~ns_id uri with None -> None | Some path -> reader path
  in
  let list_all () =
    Fileset.fold
      (fun id acc -> match entry_of_id id with Some e -> e :: acc | None -> acc)
      (Index.universe index) []
    |> List.rev
  in
  Namespace.make ~ns_id ~lang:Namespace.Hac_syntax ~search ~fetch ~list_all ()
