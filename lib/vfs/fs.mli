(** The hierarchical virtual file system HAC is layered on.

    An in-memory POSIX-like tree of directories, regular files and symbolic
    links.  All paths accepted here may be relative (resolved against the
    root) or absolute; results are always normalized absolute paths.  Every
    mutation is published on the {!Event.bus} returned by {!events} — that
    stream is how the HAC layer observes "all file system calls", standing in
    for the paper's DLL interposition on SunOS.

    Errors are reported by raising {!Errno.Error}. *)

type t
(** One file system instance. *)

type stat = {
  st_ino : Inode.ino;  (** Inode number. *)
  st_kind : Event.kind;  (** Object kind. *)
  st_size : int;  (** Bytes for files, entries for dirs, target length for links. *)
  st_mtime : int;  (** Logical modification stamp. *)
  st_ctime : int;  (** Logical status-change stamp. *)
  st_nlink : int;  (** Number of directory entries for this inode. *)
  st_uid : int;  (** Owner user id. *)
  st_mode : int;  (** Permission bits ([0oXYZ]; group bits unused). *)
}
(** Status information, the payload of the attribute cache. *)

val create : unit -> t
(** An empty file system containing only ["/"] .  The current user starts as
    the superuser (uid 0). *)

(** {1 Users and permissions}

    A minimal POSIX-flavoured model: every inode has an owner and [rwx]
    permission bits for owner and others (group bits are stored but
    unused).  The file system carries a {e current user}, like a process
    credential; uid 0 bypasses every check.  New objects are owned by the
    current user, files created [0o666], directories [0o777] — fully
    permissive until someone [chmod]s. *)

val set_user : t -> int -> unit
(** Switch the current user (no restriction — this models process identity,
    not privilege escalation). *)

val current_user : t -> int
(** The current user id. *)

val chmod : t -> ?follow:bool -> string -> int -> unit
(** Set permission bits.  Owner or superuser only ([EPERM]).  [follow]
    (default true) chases a final symbolic link; pass [false] to operate on
    the link object itself. *)

val chown : t -> ?follow:bool -> string -> int -> unit
(** Transfer ownership.  Superuser only ([EPERM]).  [follow] as in
    {!chmod}. *)

val access : t -> string -> int -> bool
(** [access fs path want] — does the current user have the [want] bits
    (r=4, w=2, x=1) on the object?  Follows symlinks; false when the path
    does not resolve. *)

val events : t -> Event.bus
(** The mutation-event stream of this file system. *)

(** {1 Simulated storage}

    An optional "disk" underneath the in-memory tree: when a
    {!Hac_fault.Store.t} is attached, every successful mutation is
    recorded on it in order, so the crash harness can reconstruct any
    partially-persisted state a real crash could leave behind.  With no
    store attached (the default) all of this is free. *)

val attach_disk : t -> Hac_fault.Store.t -> unit
(** Route every subsequent mutation through the simulated device. *)

val detach_disk : t -> unit
(** Stop recording (the store keeps whatever it already holds). *)

val disk : t -> Hac_fault.Store.t option
(** The attached device, if any. *)

val fsync : t -> string -> unit
(** Durability barrier on [path]: records an [Fsync] op, advancing the
    simulated device's durable frontier over everything written so far
    (the store models in-order syncfs persistence).  A no-op without an
    attached store — the in-memory tree itself is always "durable". *)

(** {1 Directories} *)

val mkdir : t -> string -> unit
(** Create a directory; parent must exist.  [EEXIST] if the name is taken. *)

val mkdir_p : t -> string -> unit
(** Create a directory and any missing ancestors; ok if it already exists. *)

val rmdir : t -> string -> unit
(** Remove an empty directory.  [ENOTEMPTY] otherwise; [EBUSY] for ["/"]. *)

val readdir : t -> string -> string list
(** Entry names of a directory, sorted. *)

(** {1 Files} *)

val create_file : t -> string -> unit
(** Create an empty regular file.  [EEXIST] if the name is taken. *)

val write_file : t -> string -> string -> unit
(** Create-or-truncate the file and write the whole content. *)

val append_file : t -> string -> string -> unit
(** Append to the file, creating it when missing. *)

val read_file : t -> string -> string
(** Whole contents of a regular file (follows symlinks). *)

val file_size : t -> string -> int
(** Byte length of a regular file (follows symlinks). *)

val unlink : t -> string -> unit
(** Remove a regular file or symbolic link (not a directory: [EISDIR]). *)

val rmtree : t -> string -> unit
(** Recursively remove a directory and everything under it, publishing one
    [Removed] event per object, bottom-up. *)

(** {1 Symbolic links} *)

val symlink : t -> target:string -> link:string -> unit
(** Create a symbolic link at [link] pointing to [target] (which may not
    exist).  [EEXIST] if [link] is taken. *)

val readlink : t -> string -> string
(** Target of a symbolic link. [EINVAL] when not a symlink. *)

(** {1 Rename} *)

val rename : t -> src:string -> dst:string -> unit
(** Move [src] to [dst].  An existing [dst] file/symlink is replaced; an
    existing [dst] directory must be empty.  Renaming a directory into its
    own subtree is [EINVAL]. *)

(** {1 Status and queries} *)

val stat : t -> string -> stat
(** Status, following symbolic links. *)

val lstat : t -> string -> stat
(** Status of the object itself (a symlink is not followed). *)

val exists : t -> string -> bool
(** [true] when the path resolves (following symlinks). *)

val lexists : t -> string -> bool
(** [true] when the path names an object, even a dangling symlink. *)

val is_dir : t -> string -> bool
(** [true] when the path resolves to a directory. *)

val is_file : t -> string -> bool
(** [true] when the path resolves to a regular file. *)

val is_symlink : t -> string -> bool
(** [true] when the path itself is a symbolic link. *)

val resolve : t -> string -> string
(** Physical normalized path after following every symlink; [ENOENT] when it
    does not resolve. *)

val walk : t -> string -> (string -> stat -> unit) -> unit
(** [walk fs dir f] calls [f path lstat] for every object strictly below
    [dir], depth-first, parents before children.  Symbolic links are
    reported, not followed. *)

val find_files : t -> string -> string list
(** Paths of all regular files below the directory, sorted. *)

(** {1 Low-level inode access (used by {!Fd_table})} *)

val ino_of_path : t -> string -> Inode.ino
(** Inode of the object the path resolves to (follows symlinks). *)

val pread_ino : t -> Inode.ino -> pos:int -> len:int -> string
(** Read up to [len] bytes at offset [pos] of a regular file's inode; short
    reads at end of file; [EISDIR]/[EINVAL] on non-files. *)

val pwrite_ino : t -> Inode.ino -> path:string -> pos:int -> string -> int
(** Write bytes at offset [pos] (zero-fill any gap), returning the count
    written.  [path] is attached to the published [Written] event. *)

val size_ino : t -> Inode.ino -> int
(** Current byte length of a regular file's inode. *)

(** {1 Accounting} *)

val file_count : t -> int
(** Number of regular files in the whole tree. *)

val dir_count : t -> int
(** Number of directories (including the root). *)

val total_bytes : t -> int
(** Sum of all regular-file lengths. *)

val metadata_bytes : t -> int
(** Estimated bytes of file-system metadata (inodes + entry names); the
    "UNIX needs 210 KB" side of the paper's space comparison. *)
