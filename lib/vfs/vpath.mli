(** Slash-separated virtual paths.

    Paths are plain strings; this module centralises the lexical rules so the
    rest of the system never hand-parses slashes.  A {e normalized} absolute
    path starts with ["/"], contains no empty, ["."] or [".."] components,
    and does not end with a slash (except the root itself). *)

val root : string
(** ["/"]. *)

val is_absolute : string -> bool
(** [true] iff the path starts with ['/']. *)

val split : string -> string list
(** Components of a path, dropping empty and ["."] ones.  [".."] is kept —
    resolution against the tree decides what it means.  [split "/" = []]. *)

val join : string -> string -> string
(** [join dir name] appends one component (or a relative path) to [dir].
    An absolute [name] just replaces [dir]. *)

val normalize : string -> string
(** Lexical normalization to an absolute path: resolves ["."], [".."]
    (never above the root) and duplicate slashes.  Relative input is taken
    relative to the root. *)

val normalize_under : cwd:string -> string -> string
(** Like {!normalize}, but relative input is interpreted against [cwd]
    (itself an absolute path). *)

val basename : string -> string
(** Last component; [""] for the root. *)

val dirname : string -> string
(** Parent path of a normalized path; ["/"] is its own parent. *)

val is_prefix : prefix:string -> string -> bool
(** [is_prefix ~prefix p] is [true] when normalized [p] equals [prefix] or
    lies strictly beneath it. *)

val replace_prefix : prefix:string -> by:string -> string -> string option
(** Rewrites a leading directory prefix: [replace_prefix ~prefix:"/a"
    ~by:"/b" "/a/x"] is [Some "/b/x"], [None] when [prefix] is not a
    prefix. *)

val valid_name : string -> bool
(** [true] iff the string is a legal directory-entry name: non-empty, no
    ['/'] and not ["."] or [".."]. *)

val depth : string -> int
(** Number of components of a normalized path; [depth "/" = 0]. *)

val extension : string -> string option
(** The basename's suffix after its last dot ([extension "/a/b.ps" = Some
    "ps"]); [None] when the basename has no dot. *)

val matches_builtin_attr : key:string -> value:string -> string -> bool
(** Whether a path satisfies one of the built-in path-derived query
    attributes: [name:] (exact basename), [ext:] (exact {!extension}) or
    [path:] (prefix).  [false] for any other key — callers own non-path
    attributes.  Shared by local query evaluation and remote namespaces so
    both sides agree on what [name:x] means. *)
