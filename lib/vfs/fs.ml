module Store = Hac_fault.Store

type t = {
  inodes : Inode.table;
  bus : Event.bus;
  mutable user : int;
  mutable disk : Store.t option;
      (* When attached, every successful mutation is recorded on the
         simulated device so the crash harness can rebuild any
         partially-persisted state.  Detached (the default) costs one
         match per mutation. *)
}

type stat = {
  st_ino : Inode.ino;
  st_kind : Event.kind;
  st_size : int;
  st_mtime : int;
  st_ctime : int;
  st_nlink : int;
  st_uid : int;
  st_mode : int;
}

let max_symlink_depth = 40

let create () =
  { inodes = Inode.create_table (); bus = Event.create_bus (); user = 0; disk = None }

let set_user fs uid = fs.user <- uid

let current_user fs = fs.user

let attach_disk fs store = fs.disk <- Some store

let detach_disk fs = fs.disk <- None

let disk fs = fs.disk

let log_disk fs op = match fs.disk with None -> () | Some s -> Store.record s op

let fsync fs path = log_disk fs (Store.Fsync (Vpath.normalize path))

(* r=4, w=2, x=1.  The superuser bypasses everything; the owner uses the
   high bits, everyone else the low bits (group bits unused). *)
let allowed fs (n : Inode.t) want =
  fs.user = 0
  ||
  let bits = if fs.user = n.Inode.owner then n.Inode.mode lsr 6 else n.Inode.mode in
  bits land want = want

let require fs n want subject =
  if not (allowed fs n want) then Errno.raise_error Errno.EACCES subject

let events fs = fs.bus

let node fs ino = Inode.get fs.inodes ino

(* Resolve [path] to an inode.  [follow_last] controls whether a symlink in
   the final component is chased.  The loop is lexical-with-symlinks: we keep
   a stack of remaining components and splice in symlink targets, bounding
   total splices by [max_symlink_depth]. *)
let resolve_ino fs ~follow_last path =
  let orig = path in
  (* Carry the physical ancestor stack (inos up to the root) so ".." spliced
     in by relative symlink targets is O(1). *)
  let rec go stack comps depth =
    if depth > max_symlink_depth then Errno.raise_error Errno.ELOOP orig;
    match (stack, comps) with
    | ino :: _, [] -> ino
    | [], _ -> assert false
    | ino :: up, ".." :: rest ->
        let stack = if up = [] then [ ino ] else up in
        go stack rest depth
    | (ino :: _ as stack), name :: rest -> (
        let n = node fs ino in
        match n.Inode.body with
        | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR orig
        | Inode.Directory d -> (
            require fs n 1 orig (* search permission on every traversed dir *);
            match Hashtbl.find_opt d name with
            | None -> Errno.raise_error Errno.ENOENT orig
            | Some child_ino -> (
                let child = node fs child_ino in
                match child.Inode.body with
                | Inode.Symlink target when rest <> [] || follow_last ->
                    let tcomps = Vpath.split target in
                    let stack =
                      if Vpath.is_absolute target then [ List.nth stack (List.length stack - 1) ]
                      else stack
                    in
                    go stack (tcomps @ rest) (depth + 1)
                | _ -> go (child_ino :: stack) rest depth)))
  in
  go [ Inode.root_ino ] (Vpath.split (Vpath.normalize path)) 0

(* Like [resolve_ino] but also returns the physical path of the result, used
   by [resolve].  We rebuild names by tracking them alongside inos. *)
let resolve_physical fs path =
  let orig = path in
  let rec go stack comps depth =
    if depth > max_symlink_depth then Errno.raise_error Errno.ELOOP orig;
    match (stack, comps) with
    | _, [] -> List.rev_map snd stack
    | [], _ -> assert false
    | _ :: up, ".." :: rest ->
        let stack = if up = [] then stack else up in
        go stack rest depth
    | ((ino, _) :: _ as stack), name :: rest -> (
        let n = node fs ino in
        match n.Inode.body with
        | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR orig
        | Inode.Directory d -> (
            require fs n 1 orig;
            match Hashtbl.find_opt d name with
            | None -> Errno.raise_error Errno.ENOENT orig
            | Some child_ino -> (
                let child = node fs child_ino in
                match child.Inode.body with
                | Inode.Symlink target ->
                    let tcomps = Vpath.split target in
                    let stack =
                      if Vpath.is_absolute target then [ List.nth stack (List.length stack - 1) ]
                      else stack
                    in
                    go stack (tcomps @ rest) (depth + 1)
                | _ -> go ((child_ino, name) :: stack) rest depth)))
  in
  let names = go [ (Inode.root_ino, "") ] (Vpath.split (Vpath.normalize path)) 0 in
  match names with
  | [] | [ "" ] -> Vpath.root
  | "" :: rest -> "/" ^ String.concat "/" rest
  | _ -> assert false

(* Parent directory inode and final entry name of a path; the final
   component is *not* required to exist. *)
let locate_parent fs path =
  let path = Vpath.normalize path in
  if path = Vpath.root then Errno.raise_error Errno.EINVAL path;
  let parent = Vpath.dirname path and name = Vpath.basename path in
  if not (Vpath.valid_name name) then Errno.raise_error Errno.EINVAL path;
  let pino = resolve_ino fs ~follow_last:true parent in
  let pn = node fs pino in
  match pn.Inode.body with
  | Inode.Directory d -> (pn, d, name, path)
  | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR parent

let touch fs n =
  let stamp = Inode.tick fs.inodes in
  n.Inode.mtime <- stamp;
  n.Inode.ctime <- stamp

(* -- directories -------------------------------------------------------- *)

let mkdir fs path =
  let pn, d, name, path = locate_parent fs path in
  require fs pn 3 path (* write + search on the parent *);
  if Hashtbl.mem d name then Errno.raise_error Errno.EEXIST path;
  let n =
    Inode.alloc fs.inodes ~owner:fs.user ~mode:0o777 (Inode.Directory (Hashtbl.create 8))
  in
  n.Inode.nlink <- 1;
  Hashtbl.replace d name n.Inode.ino;
  log_disk fs (Store.Mkdir path);
  Event.publish fs.bus (Event.Created (Event.Dir, path))

let rec mkdir_p fs path =
  let path = Vpath.normalize path in
  if path <> Vpath.root then begin
    (try
       let ino = resolve_ino fs ~follow_last:true path in
       match (node fs ino).Inode.body with
       | Inode.Directory _ -> ()
       | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR path
     with Errno.Error (Errno.ENOENT, _) ->
       mkdir_p fs (Vpath.dirname path);
       mkdir fs path)
  end

let lookup_entry fs path =
  let pn, d, name, path = locate_parent fs path in
  match Hashtbl.find_opt d name with
  | None -> Errno.raise_error Errno.ENOENT path
  | Some ino -> (pn, d, name, ino, path)

let rmdir fs path =
  if Vpath.normalize path = Vpath.root then Errno.raise_error Errno.EBUSY path;
  let pn, d, name, ino, path = lookup_entry fs path in
  require fs pn 3 path;
  let n = node fs ino in
  (match n.Inode.body with
  | Inode.Directory entries ->
      if Hashtbl.length entries > 0 then Errno.raise_error Errno.ENOTEMPTY path
  | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR path);
  Hashtbl.remove d name;
  Inode.free fs.inodes ino;
  log_disk fs (Store.Rmdir path);
  Event.publish fs.bus (Event.Removed (Event.Dir, path))

let readdir fs path =
  let ino = resolve_ino fs ~follow_last:true path in
  let n = node fs ino in
  match n.Inode.body with
  | Inode.Directory d ->
      require fs n 4 (Vpath.normalize path);
      Hashtbl.fold (fun name _ acc -> name :: acc) d [] |> List.sort compare
  | Inode.Regular _ | Inode.Symlink _ -> Errno.raise_error Errno.ENOTDIR path

(* -- files -------------------------------------------------------------- *)

let fresh_file () = Inode.Regular { Inode.bytes = Bytes.create 0; len = 0 }

let create_file fs path =
  let pn, d, name, path = locate_parent fs path in
  require fs pn 3 path;
  if Hashtbl.mem d name then Errno.raise_error Errno.EEXIST path;
  let n = Inode.alloc fs.inodes ~owner:fs.user ~mode:0o666 (fresh_file ()) in
  n.Inode.nlink <- 1;
  Hashtbl.replace d name n.Inode.ino;
  log_disk fs (Store.Create path);
  Event.publish fs.bus (Event.Created (Event.File, path))

let file_of_ino fs ino subject =
  let n = node fs ino in
  match n.Inode.body with
  | Inode.Regular f -> (n, f)
  | Inode.Directory _ -> Errno.raise_error Errno.EISDIR subject
  | Inode.Symlink _ -> Errno.raise_error Errno.EINVAL subject

let ensure_capacity f wanted =
  let open Inode in
  if Bytes.length f.bytes < wanted then begin
    let cap = max wanted (max 64 (2 * Bytes.length f.bytes)) in
    let bytes = Bytes.create cap in
    Bytes.blit f.bytes 0 bytes 0 f.len;
    f.bytes <- bytes
  end

let set_contents fs path content ~append =
  let path =
    try resolve_physical fs path with Errno.Error (Errno.ENOENT, _) -> Vpath.normalize path
  in
  let created =
    try
      ignore (resolve_ino fs ~follow_last:true path);
      false
    with Errno.Error (Errno.ENOENT, _) ->
      create_file fs path;
      true
  in
  let ino = resolve_ino fs ~follow_last:true path in
  let n, f = file_of_ino fs ino path in
  require fs n 2 path;
  let clen = String.length content in
  if append then begin
    ensure_capacity f (f.Inode.len + clen);
    Bytes.blit_string content 0 f.Inode.bytes f.Inode.len clen;
    f.Inode.len <- f.Inode.len + clen
  end
  else begin
    ensure_capacity f clen;
    Bytes.blit_string content 0 f.Inode.bytes 0 clen;
    f.Inode.len <- clen
  end;
  touch fs n;
  if not (created && clen = 0) then begin
    log_disk fs (if append then Store.Append (path, content) else Store.Write (path, content));
    Event.publish fs.bus (Event.Written path)
  end

let write_file fs path content = set_contents fs path content ~append:false

let append_file fs path content = set_contents fs path content ~append:true

let read_file fs path =
  let ino = resolve_ino fs ~follow_last:true path in
  let n, f = file_of_ino fs ino path in
  require fs n 4 (Vpath.normalize path);
  Bytes.sub_string f.Inode.bytes 0 f.Inode.len

let file_size fs path =
  let ino = resolve_ino fs ~follow_last:true path in
  let _, f = file_of_ino fs ino path in
  f.Inode.len

let unlink fs path =
  let pn, d, name, ino, path = lookup_entry fs path in
  require fs pn 3 path;
  let n = node fs ino in
  let kind =
    match n.Inode.body with
    | Inode.Directory _ -> Errno.raise_error Errno.EISDIR path
    | Inode.Regular _ -> Event.File
    | Inode.Symlink _ -> Event.Link
  in
  Hashtbl.remove d name;
  n.Inode.nlink <- n.Inode.nlink - 1;
  if n.Inode.nlink <= 0 then Inode.free fs.inodes ino;
  log_disk fs (Store.Unlink path);
  Event.publish fs.bus (Event.Removed (kind, path))

(* -- symlinks ------------------------------------------------------------ *)

let symlink fs ~target ~link =
  let pn, d, name, path = locate_parent fs link in
  require fs pn 3 path;
  if Hashtbl.mem d name then Errno.raise_error Errno.EEXIST path;
  let n = Inode.alloc fs.inodes ~owner:fs.user ~mode:0o777 (Inode.Symlink target) in
  n.Inode.nlink <- 1;
  Hashtbl.replace d name n.Inode.ino;
  log_disk fs (Store.Symlink { target; link = path });
  Event.publish fs.bus (Event.Created (Event.Link, path))

let readlink fs path =
  let _, _, _, ino, path = lookup_entry fs path in
  match (node fs ino).Inode.body with
  | Inode.Symlink target -> target
  | Inode.Regular _ | Inode.Directory _ -> Errno.raise_error Errno.EINVAL path

(* -- rename --------------------------------------------------------------- *)

let rename fs ~src ~dst =
  let src_pn, src_d, src_name, src_ino, src_path = lookup_entry fs src in
  let dst_pn, dst_d, dst_name, dst_path = locate_parent fs dst in
  require fs src_pn 3 src_path;
  require fs dst_pn 3 dst_path;
  if src_path = dst_path then ()
  else begin
    let src_node = node fs src_ino in
    let src_is_dir =
      match src_node.Inode.body with Inode.Directory _ -> true | _ -> false
    in
    if src_is_dir && Vpath.is_prefix ~prefix:src_path dst_path then
      Errno.raise_error Errno.EINVAL dst_path;
    (match Hashtbl.find_opt dst_d dst_name with
    | None -> ()
    | Some old_ino -> (
        let old = node fs old_ino in
        match (src_node.Inode.body, old.Inode.body) with
        | _, Inode.Directory entries ->
            if not src_is_dir then Errno.raise_error Errno.EISDIR dst_path;
            if Hashtbl.length entries > 0 then Errno.raise_error Errno.ENOTEMPTY dst_path;
            Hashtbl.remove dst_d dst_name;
            Inode.free fs.inodes old_ino
        | Inode.Directory _, _ -> Errno.raise_error Errno.ENOTDIR dst_path
        | _, (Inode.Regular _ | Inode.Symlink _) ->
            Hashtbl.remove dst_d dst_name;
            old.Inode.nlink <- old.Inode.nlink - 1;
            if old.Inode.nlink <= 0 then Inode.free fs.inodes old_ino));
    Hashtbl.remove src_d src_name;
    Hashtbl.replace dst_d dst_name src_ino;
    touch fs src_node;
    log_disk fs (Store.Rename { src = src_path; dst = dst_path });
    Event.publish fs.bus (Event.Renamed (src_path, dst_path))
  end

(* -- status --------------------------------------------------------------- *)

let stat_of_node (n : Inode.t) =
  let kind =
    match n.Inode.body with
    | Inode.Regular _ -> Event.File
    | Inode.Directory _ -> Event.Dir
    | Inode.Symlink _ -> Event.Link
  in
  {
    st_ino = n.Inode.ino;
    st_kind = kind;
    st_size = Inode.size n;
    st_mtime = n.Inode.mtime;
    st_ctime = n.Inode.ctime;
    st_nlink = n.Inode.nlink;
    st_uid = n.Inode.owner;
    st_mode = n.Inode.mode;
  }

let stat fs path = stat_of_node (node fs (resolve_ino fs ~follow_last:true path))

let lstat fs path =
  if Vpath.normalize path = Vpath.root then stat fs Vpath.root
  else
    let _, _, _, ino, _ = lookup_entry fs path in
    stat_of_node (node fs ino)

let chmod fs ?(follow = true) path mode =
  let path = Vpath.normalize path in
  let n = node fs (resolve_ino fs ~follow_last:follow path) in
  if fs.user <> 0 && fs.user <> n.Inode.owner then Errno.raise_error Errno.EPERM path;
  n.Inode.mode <- mode land 0o777;
  touch fs n;
  log_disk fs (Store.Chmod (path, mode land 0o777))

let chown fs ?(follow = true) path uid =
  let path = Vpath.normalize path in
  let n = node fs (resolve_ino fs ~follow_last:follow path) in
  if fs.user <> 0 then Errno.raise_error Errno.EPERM path;
  n.Inode.owner <- uid;
  touch fs n;
  log_disk fs (Store.Chown (path, uid))

let access fs path want =
  match resolve_ino fs ~follow_last:true path with
  | ino -> allowed fs (node fs ino) want
  | exception Errno.Error _ -> false

let exists fs path =
  match stat fs path with _ -> true | exception Errno.Error _ -> false

let lexists fs path =
  match lstat fs path with _ -> true | exception Errno.Error _ -> false

let is_dir fs path =
  match stat fs path with
  | { st_kind = Event.Dir; _ } -> true
  | _ | (exception Errno.Error _) -> false

let is_file fs path =
  match stat fs path with
  | { st_kind = Event.File; _ } -> true
  | _ | (exception Errno.Error _) -> false

let is_symlink fs path =
  match lstat fs path with
  | { st_kind = Event.Link; _ } -> true
  | _ | (exception Errno.Error _) -> false

let resolve fs path = resolve_physical fs path

let walk fs dir f =
  let rec go dir_path =
    let names = readdir fs dir_path in
    let visit name =
      let p = Vpath.join dir_path name in
      let st = lstat fs p in
      f p st;
      if st.st_kind = Event.Dir then go p
    in
    List.iter visit names
  in
  let dir = Vpath.normalize dir in
  (match stat fs dir with
  | { st_kind = Event.Dir; _ } -> ()
  | _ -> Errno.raise_error Errno.ENOTDIR dir);
  go dir

let find_files fs dir =
  let acc = ref [] in
  walk fs dir (fun p st -> if st.st_kind = Event.File then acc := p :: !acc);
  List.sort compare !acc

let rmtree fs path =
  let path = Vpath.normalize path in
  (* Collect first, then delete children-before-parents. *)
  let objs = ref [] in
  walk fs path (fun p st -> objs := (p, st) :: !objs);
  let deeper (a, _) (b, _) = compare (Vpath.depth b) (Vpath.depth a) in
  List.iter
    (fun (p, st) -> if st.st_kind = Event.Dir then rmdir fs p else unlink fs p)
    (List.stable_sort deeper !objs);
  rmdir fs path

(* -- low-level ------------------------------------------------------------ *)

let ino_of_path fs path = resolve_ino fs ~follow_last:true path

let pread_ino fs ino ~pos ~len =
  if pos < 0 || len < 0 then Errno.raise_error Errno.EINVAL "pread";
  let n, f = file_of_ino fs ino "pread" in
  require fs n 4 "pread";
  if pos >= f.Inode.len then ""
  else
    let n = min len (f.Inode.len - pos) in
    Bytes.sub_string f.Inode.bytes pos n

let pwrite_ino fs ino ~path ~pos data =
  if pos < 0 then Errno.raise_error Errno.EINVAL "pwrite";
  let n, f = file_of_ino fs ino "pwrite" in
  require fs n 2 (Vpath.normalize path);
  let dlen = String.length data in
  ensure_capacity f (pos + dlen);
  if pos > f.Inode.len then Bytes.fill f.Inode.bytes f.Inode.len (pos - f.Inode.len) '\000';
  Bytes.blit_string data 0 f.Inode.bytes pos dlen;
  if pos + dlen > f.Inode.len then f.Inode.len <- pos + dlen;
  touch fs n;
  log_disk fs (Store.Pwrite (Vpath.normalize path, pos, data));
  Event.publish fs.bus (Event.Written (Vpath.normalize path));
  dlen

let size_ino fs ino =
  let _, f = file_of_ino fs ino "size" in
  f.Inode.len

(* -- accounting ------------------------------------------------------------ *)

let fold_tree fs f init =
  let acc = ref init in
  let root_stat = stat fs Vpath.root in
  acc := f Vpath.root root_stat !acc;
  walk fs Vpath.root (fun p st -> acc := f p st !acc);
  !acc

let file_count fs =
  fold_tree fs (fun _ st n -> if st.st_kind = Event.File then n + 1 else n) 0

let dir_count fs =
  fold_tree fs (fun _ st n -> if st.st_kind = Event.Dir then n + 1 else n) 0

let total_bytes fs =
  fold_tree fs (fun _ st n -> if st.st_kind = Event.File then n + st.st_size else n) 0

(* Rough per-object metadata estimate: a fixed inode record plus the entry
   name, mirroring what a real FS stores per object. *)
let inode_record_bytes = 64

let metadata_bytes fs =
  fold_tree fs
    (fun p _ n -> n + inode_record_bytes + String.length (Vpath.basename p))
    0
