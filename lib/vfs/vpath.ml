let root = "/"

let is_absolute p = String.length p > 0 && p.[0] = '/'

let split p =
  String.split_on_char '/' p
  |> List.filter (fun c -> c <> "" && c <> ".")

let rec resolve_dots acc = function
  | [] -> List.rev acc
  | ".." :: rest -> (
      match acc with
      | [] -> resolve_dots [] rest (* ".." above root stays at root *)
      | _ :: up -> resolve_dots up rest)
  | c :: rest -> resolve_dots (c :: acc) rest

let of_components = function
  | [] -> root
  | cs -> "/" ^ String.concat "/" cs

let normalize p = of_components (resolve_dots [] (split p))

let join dir name =
  if is_absolute name then normalize name
  else normalize (dir ^ "/" ^ name)

let normalize_under ~cwd p =
  if is_absolute p then normalize p else join (normalize cwd) p

let basename p =
  match List.rev (split p) with [] -> "" | last :: _ -> last

let dirname p =
  match List.rev (split p) with
  | [] | [ _ ] -> root
  | _ :: rest -> of_components (List.rev rest)

let is_prefix ~prefix p =
  let prefix = normalize prefix and p = normalize p in
  prefix = root || p = prefix
  || String.length p > String.length prefix
     && String.sub p 0 (String.length prefix) = prefix
     && p.[String.length prefix] = '/'

let replace_prefix ~prefix ~by p =
  let prefix = normalize prefix and p = normalize p in
  if not (is_prefix ~prefix p) then None
  else
    let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
    let tail = drop (List.length (split prefix)) (split p) in
    Some (normalize (of_components (resolve_dots [] (split by) @ tail)))

let valid_name n =
  n <> "" && n <> "." && n <> ".." && not (String.contains n '/')

let extension p =
  let base = basename p in
  match String.rindex_opt base '.' with
  | Some i -> Some (String.sub base (i + 1) (String.length base - i - 1))
  | None -> None

let matches_builtin_attr ~key ~value p =
  match key with
  | "name" -> basename p = value
  | "ext" -> extension p = Some value
  | "path" -> is_prefix ~prefix:value p
  | _ -> false

let depth p = List.length (split p)
