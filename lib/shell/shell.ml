module Hac = Hac_core.Hac
module Export = Hac_core.Export
module Recover = Hac_core.Recover
module Link = Hac_core.Link
module Vpath = Hac_vfs.Vpath
module Fs = Hac_vfs.Fs
module Errno = Hac_vfs.Errno

module Namespace = Hac_remote.Namespace
module Fault = Hac_fault.Fault

type session = {
  mutable t : Hac.t;
  mutable wd : string;
  (* Fault injectors of the demo namespaces, by ns_id.  They share the
     instance's virtual clock, so they die with it on [restore]. *)
  faults : (string, Fault.t) Hashtbl.t;
  (* Pre-rendered per-session table of the last [serve] run, for
     [sessions] to print. *)
  mutable serve_report : string option;
  (* Pre-rendered SLO burn-rate report of the last [serve] run, for
     [slo] to print. *)
  mutable slo_report : string option;
}

let help_text =
  {|Commands:
  pwd | cd DIR | ls [-l] [DIR]        navigate
  mkdir DIR | rmdir DIR               plain directories
  write FILE TEXT...                  create/overwrite a file
  append FILE TEXT...                 append a line
  cat FILE                            show contents (follows links, local or remote)
  rm PATH                             remove file or link (link removal prohibits it)
  mv SRC DST                          rename/move
  ln TARGET LINK                      symbolic link (permanent inside a semantic dir)
  chmod MODE PATH | chown UID PATH    permissions (octal MODE, e.g. 600)
  su UID                              switch current user (0 = superuser)
  smkdir DIR QUERY...                 create a semantic directory
  srmdir DIR                          remove a semantic directory
  schquery DIR QUERY...               change (or retro-fit) a directory's query
  sreadin DIR                         show a directory's query
  ssearch QUERY...                    evaluate a query ad hoc (no directory)
  sfind QUERY...                      alias of ssearch
  sgrep REGEX [DIR]                   regex search, with matching lines
  links [DIR]                         show links with their classes
  prohibited [DIR]                    show prohibited targets
  sact LINK                           show the lines that match the query
  ssync [DIR]                         re-evaluate a directory and its dependents
  sreindex                            settle data consistency now
  par [N]                             settle now with an N-domain pool (default auto)
  smount DIR demo-library|demo-web    mount a built-in demo namespace
  sumount DIR NS                      unmount a namespace
  sprohibit DIR TARGET                prohibit a target directly
  sunprohibit DIR TARGET              lift a prohibition
  sexport [DIR]                       export semantic directories as text
  srecover [-v]                       restore semantic state from /.hac metadata
                                      (-v adds journal integrity accounting)
  checkpoint                          commit an atomic checkpoint of the journal chain
  compact                             drop journal history a checkpoint supersedes
  store [BUDGET]                      enable the durable storage tier (block store,
                                      on-disk postings, fast-mount checkpoints)
  crashtest [SEED]                    run the exhaustive crash-point recovery harness
  serve [SESSIONS] [OPS]              serving-layer demo: concurrent sessions,
                                      snapshot reads, group-commit writes
  sessions                            per-session table of the last serve run
  mount-status                        health of every mounted namespace
  fault NS fail N|outage|latency S|corrupt|flaky P
                                      inject a failure plan into a demo namespace
  fault NS clear | fault NS           clear / show a namespace's plans
  fault tick S                        advance the virtual clock S seconds
  save HOSTFILE | restore HOSTFILE    snapshot the whole fs to the host disk
  sdirs                               list semantic directories
  stats                               space and consistency counters
  trace [on|off|dump|json|clear]      span tracing (virtual-clock timestamps)
  flight [show|dump FILE|read FILE|auto DIR|auto off]
                                      flight-recorder ring: status, entries, dumps
  slo                                 SLO burn-rate report of the last serve run
  metrics [-json|-jsonl|-prom]        dump the metrics registry
  profile CMD...                      run any command in a root span: tree,
                                      per-stage totals, SLO verdict
  help | quit

Query syntax: words, "phrases", ~approx, /regex/, attr:value (from:, subject:,
type:, name:, ext:, path:), {/dir} references, AND OR NOT ( ) *|}

let transducer = Hac_index.Transducer.(combine [ email; file_type ])

let demo_library () =
  Hac_remote.Namespace.static ~ns_id:"demo-library"
    [
      ("sorting.ps", "dlib://demo/sorting.ps", "A taxonomy of sorting algorithms.\n");
      ("btrees.ps", "dlib://demo/btrees.ps", "B-tree indexing for databases and file systems.\n");
      ("raft.ps", "dlib://demo/raft.ps", "Consensus made understandable.\n");
    ]

let demo_web () =
  Hac_remote.Web_search.create "demo-web"
    [
      {
        Hac_remote.Web_search.title = "filesystem-tuning";
        uri = "http://demo-web/fs-tuning";
        body = "tuning file systems for small files";
      };
      {
        Hac_remote.Web_search.title = "index-compression";
        uri = "http://demo-web/index-compression";
        body = "compressing inverted index postings";
      };
    ]

let load_demo t =
  Hac.mkdir_p t "/home/demo/notes";
  Hac.mkdir_p t "/home/demo/src";
  Hac.write_file t "/home/demo/notes/fs.txt"
    "Ideas about file systems and indexing.\nSemantic directories are folders with queries.\n";
  Hac.write_file t "/home/demo/notes/todo.txt" "Buy coffee.\nFix the parser.\n";
  Hac.write_file t "/home/demo/src/main.ml" "let () = print_endline \"indexing demo\"\n"

let make ?(demo = false) () =
  let t = Hac.create ~auto_sync:true ~transducer () in
  if demo then load_demo t;
  { t; wd = "/"; faults = Hashtbl.create 4; serve_report = None; slo_report = None }

let of_hac t =
  { t; wd = "/"; faults = Hashtbl.create 4; serve_report = None; slo_report = None }

(* Demo namespaces mount behind the full resilience stack: a fault injector
   (driven by the [fault] command) under the retry/breaker policy, all on
   the instance's virtual clock. *)
let resilient_mount s dir ns =
  let clock = Hac.clock s.t in
  let inj = Fault.create ~seed:(Hashtbl.hash ns.Namespace.ns_id) ~clock () in
  Hashtbl.replace s.faults ns.Namespace.ns_id inj;
  (* The instance's registry, so `metrics` shows every namespace's
     resilience accounting alongside the core's instruments. *)
  Hac.smount s.t dir
    (Namespace.with_policy ~metrics:(Hac.metrics s.t) ~clock
       (Namespace.with_faults inj ns))

let hac s = s.t

let cwd s = s.wd

let resolve s p = Vpath.normalize_under ~cwd:s.wd p

let out buf fmt = Printf.ksprintf (fun msg -> Buffer.add_string buf msg) fmt

let show_links s buf dir =
  List.iter
    (fun l ->
      out buf "%-24s -> %-40s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links s.t dir)

let cmd_ls s buf long args =
  let dir = match args with [] -> s.wd | d :: _ -> resolve s d in
  List.iter
    (fun name ->
      let p = Vpath.join dir name in
      if long then begin
        let st = Fs.lstat (Hac.fs s.t) p in
        let kind =
          match st.Fs.st_kind with
          | Hac_vfs.Event.Dir -> if Hac.is_semantic s.t p then "sdir" else "dir "
          | Hac_vfs.Event.File -> "file"
          | Hac_vfs.Event.Link -> "link"
        in
        out buf "%s %3o %2d %8d  %s\n" kind st.Fs.st_mode st.Fs.st_uid st.Fs.st_size name
      end
      else out buf "%s\n" name)
    (Hac.readdir s.t dir)

let cmd_ssearch s buf query =
  match Hac_query.Parser.parse_result query with
  | Error msg -> out buf "bad query: %s\n" msg
  | Ok _ -> (
      (* Evaluate through a throwaway semantic directory, then clean up —
         the paper's point that queries and directories are the same thing. *)
      let dir = "/.ssearch-tmp" in
      match Hac.smkdir s.t dir query with
      | () ->
          List.iter
            (fun l -> out buf "%s\n" (Link.target_key l.Link.target))
            (Hac.links s.t dir);
          Hac.srmdir s.t dir
      | exception Hac.Hac_error msg -> out buf "error: %s\n" msg)

let cmd_sgrep s buf pattern dir =
  (* Accept the query language's /re/ spelling as well as a bare pattern. *)
  let pattern =
    let n = String.length pattern in
    if n >= 2 && pattern.[0] = '/' && pattern.[n - 1] = '/' then String.sub pattern 1 (n - 2)
    else pattern
  in
  match Hac_index.Regex.compile_result pattern with
  | Error msg -> out buf "bad regex: %s\n" msg
  | Ok re ->
      let fs = Hac.fs s.t in
      let files =
        try Fs.find_files fs dir with Errno.Error _ -> []
      in
      List.iter
        (fun p ->
          if not (Vpath.is_prefix ~prefix:"/.hac" p) then
            match Fs.read_file fs p with
            | content ->
                Hac_index.Tokenizer.iter_lines content (fun lineno line ->
                    if Hac_index.Regex.matches re line then
                      out buf "%s:%d: %s\n" p lineno line)
            | exception Errno.Error _ -> ())
        files

let mount_status_report s buf =
  (match Hac.mount_status s.t with
  | [] -> out buf "no mounted namespaces\n"
  | rows ->
      List.iter
        (fun { Hac.mh_path; mh_ns; mh_health } ->
          match mh_health with
          | None -> out buf "%-16s %-14s (no resilience policy)\n" mh_path mh_ns
          | Some h ->
              out buf
                "%-16s %-14s breaker=%-9s calls=%d failures=%d retries=%d trips=%d%s\n"
                mh_path mh_ns
                (Hac_fault.Breaker.state_name h.Namespace.breaker)
                h.Namespace.total_calls h.Namespace.total_failures
                h.Namespace.total_retries h.Namespace.breaker_trips
                (match h.Namespace.last_error with
                | Some e -> Printf.sprintf " last-error=%S" e
                | None -> ""))
        rows);
  List.iter
    (fun dir ->
      match Hac.stale_remotes s.t dir with
      | [] -> ()
      | stale ->
          out buf "%s: %d stale entr%s (%s)\n" dir (List.length stale)
            (if List.length stale = 1 then "y" else "ies")
            (String.concat ", "
               (List.map (fun r -> r.Hac_core.Semdir.rr_name) stale)))
    (Hac.semantic_dirs s.t);
  out buf "clock=%.2fs remote-failures=%d stale-serves=%d\n"
    (Hac_fault.Clock.now (Hac.clock s.t))
    (Hac.remote_failures s.t) (Hac.stale_serves s.t)

let fault_usage = "fault NS fail N|outage|latency S|corrupt|flaky P|clear — or: fault NS, fault tick S"

let cmd_fault s buf args =
  match args with
  | [ "tick"; secs ] -> (
      match float_of_string_opt secs with
      | Some d when d >= 0.0 ->
          Hac_fault.Clock.advance (Hac.clock s.t) d;
          out buf "clock=%.2fs\n" (Hac_fault.Clock.now (Hac.clock s.t))
      | Some _ | None -> out buf "fault tick: bad duration %s\n" secs)
  | ns :: rest -> (
      match Hashtbl.find_opt s.faults ns with
      | None ->
          out buf "fault: %s is not an injectable namespace (mount a demo namespace first)\n" ns
      | Some inj -> (
          let show () =
            match Fault.plans inj with
            | [] -> out buf "%s: no active faults (%d calls, %d injected)\n" ns
                      (Fault.calls inj) (Fault.injected inj)
            | plans ->
                out buf "%s: %s (%d calls, %d injected)\n" ns
                  (String.concat ", " (List.map Fault.plan_to_string plans))
                  (Fault.calls inj) (Fault.injected inj)
          in
          match rest with
          | [] -> show ()
          | [ "clear" ] ->
              Fault.clear inj;
              show ()
          | [ "fail"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 ->
                  Fault.add_plan inj (Fault.Fail_times n);
                  show ()
              | Some _ | None -> out buf "fault: bad count %s\n" n)
          | [ "outage" ] ->
              Fault.add_plan inj Fault.Outage;
              show ()
          | [ "latency"; d ] -> (
              match float_of_string_opt d with
              | Some d when d >= 0.0 ->
                  Fault.add_plan inj (Fault.Latency d);
                  show ()
              | Some _ | None -> out buf "fault: bad duration %s\n" d)
          | [ "corrupt" ] ->
              Fault.add_plan inj Fault.Corrupt;
              show ()
          | [ "flaky"; p ] -> (
              match float_of_string_opt p with
              | Some p when p >= 0.0 && p <= 1.0 ->
                  Fault.add_plan inj (Fault.Flaky p);
                  show ()
              | Some _ | None -> out buf "fault: bad probability %s\n" p)
          | _ -> out buf "%s\n" fault_usage))
  | [] -> out buf "%s\n" fault_usage

let space_report s buf =
  let sp = Hac.space s.t in
  out buf "semantic dirs        : %d\n" (Hac.semdir_count s.t);
  out buf "dirty (stale index)  : %d files\n" (Hac.dirty_count s.t);
  out buf "indexed documents    : %d\n" (Hac_index.Index.doc_count (Hac.index s.t));
  out buf "index bytes          : %d\n" sp.Hac.index_bytes;
  out buf "HAC structure bytes  : %d (semdirs %d, uidmap %d, depgraph %d)\n"
    (Hac.hac_overhead_bytes sp) sp.Hac.semdir_bytes sp.Hac.uidmap_bytes sp.Hac.depgraph_bytes;
  out buf "fs metadata bytes    : %d\n" sp.Hac.fs_metadata_bytes;
  let cs = Hac.index_report s.t in
  out buf "postings (CAS %s)    : %d bytes, %d terms, %d partitions, %d labels\n"
    (if Hac.cas_enabled s.t then "on" else "off")
    cs.Hac_index.Cas.bytes cs.Hac_index.Cas.terms cs.Hac_index.Cas.partitions
    cs.Hac_index.Cas.labels;
  out buf "containers           : %d arrays, %d bitmaps, %d runs\n" cs.Hac_index.Cas.arrays
    cs.Hac_index.Cas.bitmaps cs.Hac_index.Cas.run_containers;
  (* The ratio prices the alternative the compression replaces: one flat
     doc-id-universe bitmap per term (the paper's N/8-byte result bitmaps,
     applied to postings). *)
  let ratio =
    if cs.Hac_index.Cas.bytes = 0 then 1.0
    else float_of_int cs.Hac_index.Cas.uncompressed_bytes /. float_of_int cs.Hac_index.Cas.bytes
  in
  out buf "vs flat bitmaps      : %d bytes uncompressed (%.1fx compression)\n"
    cs.Hac_index.Cas.uncompressed_bytes ratio;
  let rc = Hac.result_cache_stats s.t in
  out buf "scope generation     : %d\n" (Hac.scope_generation s.t);
  out buf "result cache         : %d hits, %d misses, %d entries, %d bytes\n"
    rc.Hac_core.Rescache.hits rc.Hac_core.Rescache.misses rc.Hac_core.Rescache.entries
    rc.Hac_core.Rescache.bytes;
  (match Hac.store s.t with
  | None -> out buf "storage tier         : off\n"
  | Some store ->
      let c = Hac_store.Store.cache store in
      out buf "storage tier         : on (lineage %d)\n" (Hac_store.Store.lineage store);
      out buf "block cache          : %d hits, %d misses, %d/%d bytes (peak %d)\n"
        (Hac_store.Cache.hits c) (Hac_store.Cache.misses c) (Hac_store.Cache.bytes c)
        (Hac_store.Cache.budget c) (Hac_store.Cache.peak_bytes c);
      out buf "postings segments    : %d on disk\n" (Hac_store.Store.segment_count store));
  out buf "current user         : %d\n" (Fs.current_user (Hac.fs s.t))

module Trace = Hac_obs.Trace
module Metrics = Hac_obs.Metrics
module Flight = Hac_obs.Flight
module Slo = Hac_obs.Slo

(* Mount-time integrity warnings: recovery is best-effort by design, so any
   record or directory it had to drop must be surfaced, not silently eaten. *)
let recovery_warnings buf (r : Recover.reload_report) =
  let j = r.Recover.journal in
  let bad = j.Recover.corrupt + j.Recover.malformed in
  if bad > 0 then
    out buf "warning: skipped %d journal record(s) (%d corrupt, %d malformed)\n" bad
      j.Recover.corrupt j.Recover.malformed;
  if r.Recover.skipped > 0 then
    out buf "warning: skipped %d director%s (already semantic, or metadata damaged)\n"
      r.Recover.skipped
      (if r.Recover.skipped = 1 then "y" else "ies")

let cmd_trace s buf args =
  let tr = Hac.tracer s.t in
  match args with
  | [ "on" ] ->
      Trace.set_enabled tr true;
      out buf "tracing on\n"
  | [ "off" ] ->
      Trace.set_enabled tr false;
      out buf "tracing off\n"
  | [ "dump" ] -> Buffer.add_string buf (Trace.render tr)
  | [ "json" ] -> Buffer.add_string buf (Trace.to_jsonl tr)
  | [ "clear" ] ->
      Trace.clear tr;
      out buf "trace buffer cleared\n"
  | [] ->
      out buf "tracing %s: %d spans buffered, %d finished, %d dropped\n"
        (if Trace.enabled tr then "on" else "off")
        (List.length (Trace.finished tr))
        (Trace.total tr) (Trace.dropped tr)
  | _ -> out buf "trace [on|off|dump|json|clear]\n"

let cmd_flight s buf args =
  let fl = Hac.flight s.t in
  match args with
  | [] ->
      out buf "flight ring: %d/%d buffered, %d recorded, %d evicted, %d dump(s) written\n"
        (Flight.stored fl) (Flight.capacity fl) (Flight.total fl) (Flight.dropped fl)
        (Flight.dumps fl);
      out buf "auto-dump: %s\n"
        (match Flight.auto_dump fl with Some d -> d | None -> "off")
  | [ "show" ] -> Buffer.add_string buf (Flight.render (Flight.entries fl))
  | [ "dump"; path ] -> (
      match Flight.dump_to fl ~reason:"shell flight dump" path with
      | () -> out buf "wrote %s\n" path
      | exception Sys_error msg -> out buf "flight dump: %s\n" msg)
  | [ "read"; path ] -> (
      match Flight.load path with
      | Ok d -> Buffer.add_string buf (Flight.render_dump d)
      | Error e -> out buf "flight read: %s: %s\n" path e)
  | [ "auto"; "off" ] ->
      Flight.set_auto_dump fl None;
      out buf "auto-dump off\n"
  | [ "auto"; dir ] ->
      Flight.set_auto_dump fl (Some dir);
      out buf "auto-dump to %s\n" dir
  | _ -> out buf "flight [show|dump FILE|read FILE|auto DIR|auto off]\n"

(* serve [SESSIONS] [OPS]: a self-contained serving-layer simulation over
   the current instance.  Seeds a dedicated subtree (a few corpus files
   and one semantic directory), drives SESSIONS deterministic client
   streams through a multi-session server wrapping this instance
   (snapshot-isolated reads, group-commit writes, admission control),
   prints the aggregate stats and stores the per-session table for the
   [sessions] command. *)
let cmd_serve s buf args =
  let module Server = Hac_serve.Server in
  let module Admission = Hac_serve.Admission in
  let module Msg = Hac_serve.Msg in
  let module Sess = Hac_serve.Session in
  let module Serveload = Hac_workload.Serveload in
  let module Corpus = Hac_workload.Corpus in
  let num d v = match int_of_string_opt v with Some n -> n | None -> d in
  let sessions_n, ops_n =
    match args with
    | a :: b :: _ -> (num 3 a, num 12 b)
    | [ a ] -> (num 3 a, 12)
    | [] -> (3, 12)
  in
  let sessions_n = max 1 (min 16 sessions_n) in
  let ops_n = max 1 (min 200 ops_n) in
  let root =
    let rec pick k =
      let p = Printf.sprintf "/serve%d" k in
      if Fs.exists (Hac.fs s.t) p then pick (k + 1) else p
    in
    pick 0
  in
  Hac.mkdir s.t root;
  Hac.mkdir s.t (root ^ "/docs");
  let seeded =
    List.mapi
      (fun i w ->
        let p = Printf.sprintf "%s/docs/doc%d.txt" root i in
        Hac.write_file s.t p (w ^ " corpus document for the serving demo\n");
        p)
      [ "servealpha"; "servebeta"; "servealpha servebeta" ]
  in
  Hac.smkdir s.t (root ^ "/q-alpha") "servealpha";
  let config =
    {
      Hac_serve.Server.default_config with
      max_batch = 8;
      admission = { Admission.default with queue_bound = 64; slo_s = 60.0; seed = 11 };
    }
  in
  let server = Server.create ~config s.t in
  let corpus = Corpus.make ~seed:11 () in
  let profile = { Serveload.default with ops_per_session = ops_n } in
  let streams =
    Array.init sessions_n (fun i ->
        ref
          (List.map Msg.of_workload
             (Serveload.session_ops profile ~corpus ~seed:11 ~session:i
                ~files:(Array.of_list seeded)
                ~semdirs:[| root ^ "/q-alpha" |]
                ~fresh_root:root)))
  in
  let k = ref 0 in
  while Array.exists (fun r -> !r <> []) streams do
    Array.iteri
      (fun i r ->
        match !r with
        | [] -> ()
        | op :: rest ->
            r := rest;
            incr k;
            ignore (Server.submit server ~session:(Printf.sprintf "s%d" i) op);
            if !k mod 4 = 0 then Server.pump server)
      streams
  done;
  Server.drain server;
  let st = Server.stats server in
  let table =
    String.concat "\n" (List.map Sess.render (Server.sessions server)) ^ "\n"
  in
  s.serve_report <- Some table;
  s.slo_report <-
    Some
      (let causes = Server.degraded_causes server in
       Slo.render (Server.slo server)
       ^
       if causes = [] then ""
       else "degraded causes: " ^ String.concat ", " causes ^ "\n");
  Server.stop server;
  out buf
    "served %d ops from %d sessions under %s:\n\
    \  admitted %d, shed %d, commits %d in %d batches, acked %d, stale reads %d\n"
    st.Server.submitted sessions_n root st.Server.admitted st.Server.shed
    st.Server.commits st.Server.batches st.Server.acked st.Server.stale_reads;
  out buf "per-session table stored (print it with: sessions)\n"

let rec run s buf line =
  let parts =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  match parts with
  | [] -> true
  | "quit" :: _ | "exit" :: _ -> false
  | cmd :: args ->
      (try
         match (cmd, args) with
         | "help", _ -> out buf "%s\n" help_text
         | "pwd", _ -> out buf "%s\n" s.wd
         | "cd", [ d ] ->
             let d = resolve s d in
             if Hac.is_dir s.t d then s.wd <- d else out buf "cd: %s: not a directory\n" d
         | "ls", "-l" :: rest -> cmd_ls s buf true rest
         | "ls", rest -> cmd_ls s buf false rest
         | "mkdir", [ d ] -> Hac.mkdir s.t (resolve s d)
         | "rmdir", [ d ] -> Hac.rmdir s.t (resolve s d)
         | "write", f :: text ->
             Hac.write_file s.t (resolve s f) (String.concat " " text ^ "\n")
         | "append", f :: text ->
             Hac.append_file s.t (resolve s f) (String.concat " " text ^ "\n")
         | "cat", [ f ] -> (
             match Hac.resolve_link s.t (resolve s f) with
             | Some c -> Buffer.add_string buf c
             | None -> out buf "cat: %s: cannot read\n" f)
         | "rm", [ p ] -> Hac.unlink s.t (resolve s p)
         | "mv", [ a; b ] -> Hac.rename s.t ~src:(resolve s a) ~dst:(resolve s b)
         | "ln", [ target; link ] ->
             Hac.symlink s.t ~target:(resolve s target) ~link:(resolve s link)
         | "chmod", [ mode; p ] -> (
             match int_of_string_opt ("0o" ^ mode) with
             | Some m -> Fs.chmod (Hac.fs s.t) (resolve s p) m
             | None -> out buf "chmod: bad octal mode %s\n" mode)
         | "chown", [ uid; p ] -> (
             match int_of_string_opt uid with
             | Some u -> Fs.chown (Hac.fs s.t) (resolve s p) u
             | None -> out buf "chown: bad uid %s\n" uid)
         | "su", [ uid ] -> (
             match int_of_string_opt uid with
             | Some u -> Fs.set_user (Hac.fs s.t) u
             | None -> out buf "su: bad uid %s\n" uid)
         | "smkdir", d :: q when q <> [] -> Hac.smkdir s.t (resolve s d) (String.concat " " q)
         | "srmdir", [ d ] -> Hac.srmdir s.t (resolve s d)
         | "schquery", d :: q when q <> [] ->
             Hac.schquery s.t (resolve s d) (String.concat " " q)
         | "sreadin", [ d ] -> (
             match Hac.sreadin s.t (resolve s d) with
             | Some q -> out buf "%s\n" q
             | None -> out buf "%s is not semantic\n" d)
         | "ssearch", q when q <> [] -> cmd_ssearch s buf (String.concat " " q)
         | "sfind", q when q <> [] -> cmd_ssearch s buf (String.concat " " q)
         | "sgrep", pattern :: rest ->
             cmd_sgrep s buf pattern (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "links", rest -> show_links s buf (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "prohibited", rest ->
             let dir = match rest with [] -> s.wd | d :: _ -> resolve s d in
             List.iter (fun k -> out buf "%s\n" k) (Hac.prohibited s.t dir)
         | "sact", [ l ] ->
             List.iter
               (fun (n, line) -> out buf "%d: %s\n" n line)
               (Hac.sact s.t (resolve s l))
         | "ssync", rest -> Hac.ssync s.t (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "sreindex", _ -> out buf "reindexed %d files\n" (Hac.reindex s.t ())
         | "par", rest -> (
             let domains =
               match rest with
               | [] -> Some (Hac_par.Pool.default_domains ())
               | n :: _ -> (
                   match int_of_string_opt n with
                   | Some d when d >= 1 -> Some d
                   | Some _ | None -> None)
             in
             match domains with
             | None -> out buf "par: expected a positive domain count\n"
             | Some d ->
                 Hac.settle ~domains:d s.t;
                 out buf "settled with %d domain(s)\n" d)
         | "smount", [ d; "demo-library" ] -> resilient_mount s (resolve s d) (demo_library ())
         | "smount", [ d; "demo-web" ] -> resilient_mount s (resolve s d) (demo_web ())
         | "sumount", [ d; ns ] -> Hac.sumount s.t (resolve s d) ~ns_id:ns
         | "sprohibit", [ d; target ] ->
             Hac.prohibit_target s.t ~dir:(resolve s d) ~target:(resolve s target)
         | "sunprohibit", [ d; target ] ->
             Hac.unprohibit s.t ~dir:(resolve s d) ~target:(resolve s target)
         | "sexport", [] -> Buffer.add_string buf (Export.export_all s.t)
         | "sexport", [ d ] -> (
             match Export.export_dir s.t (resolve s d) with
             | Some text -> Buffer.add_string buf text
             | None -> out buf "%s is not semantic\n" d)
         | "srecover", [ "-v" ] ->
             let r = Recover.reload_report s.t in
             out buf "restored %d semantic directories (%d skipped)\n" r.Recover.restored
               r.Recover.skipped;
             out buf "journal: %d records applied, %d corrupt, %d malformed\n"
               r.Recover.journal.Recover.applied r.Recover.journal.Recover.corrupt
               r.Recover.journal.Recover.malformed;
             (match r.Recover.checkpoint_epoch with
             | Some e ->
                 out buf "chain: checkpoint epoch %d + %d segment(s) replayed\n" e
                   r.Recover.segments_replayed
             | None ->
                 out buf "chain: no checkpoint, %d segment(s) replayed\n"
                   r.Recover.segments_replayed);
             recovery_warnings buf r
         | "srecover", _ ->
             let r = Recover.reload_report s.t in
             out buf "restored %d semantic directories\n" r.Recover.restored;
             recovery_warnings buf r
         | "checkpoint", _ ->
             let e = Hac.checkpoint s.t in
             out buf "checkpoint committed for epoch %d; appends continue in epoch %d\n" e
               (Hac.journal_epoch s.t)
         | "compact", _ ->
             out buf "compaction removed %d superseded metadata file(s)\n" (Hac.compact s.t)
         | "store", rest -> (
             if Hac.store_enabled s.t then
               out buf "storage tier already enabled (see stats)\n"
             else
               let budget =
                 match rest with
                 | [] -> Some Hac_store.Store.default_budget
                 | n :: _ -> (
                     match int_of_string_opt n with
                     | Some b when b > 0 -> Some b
                     | Some _ | None -> None)
               in
               match budget with
               | None -> out buf "store: expected a positive cache budget in bytes\n"
               | Some b ->
                   Hac.enable_store ~budget:b s.t;
                   out buf
                     "storage tier enabled: %d-byte block cache; checkpoint commits \
                      the fast-mount image\n"
                     b)
         | "serve", rest -> cmd_serve s buf rest
         | "sessions", _ -> (
             match s.serve_report with
             | Some table -> Buffer.add_string buf table
             | None -> out buf "no serve run yet (try: serve 3 12)\n")
         | "crashtest", rest ->
             let seed =
               match rest with
               | [ n ] -> ( match int_of_string_opt n with Some v -> v | None -> 1)
               | _ -> 1
             in
             Buffer.add_string buf (Hac_crash.Harness.summary (Hac_crash.Harness.run ~seed ()))
         | "save", [ host ] ->
             Hac_vfs.Image.save_file (Hac.fs s.t) host;
             out buf "saved image to %s\n" host
         | "restore", [ host ] -> (
             match Hac_vfs.Image.load_file host with
             | Error msg -> out buf "restore failed: %s\n" msg
             | Ok fs ->
                 Hac.shutdown ~graceful:false s.t;
                 s.t <- Hac.of_fs ~auto_sync:true ~transducer fs;
                 s.wd <- "/";
                 (* The injectors reference the dead instance's clock, and
                    their namespaces are gone with its mount table. *)
                 Hashtbl.reset s.faults;
                 let r = Recover.reload_report s.t in
                 out buf "restored image; recovered %d semantic directories\n"
                   r.Recover.restored;
                 recovery_warnings buf r)
         | "sdirs", _ -> List.iter (fun d -> out buf "%s\n" d) (Hac.semantic_dirs s.t)
         | "mount-status", _ -> mount_status_report s buf
         | "fault", rest -> cmd_fault s buf rest
         | "stats", _ -> space_report s buf
         | "trace", rest -> cmd_trace s buf rest
         | "flight", rest -> cmd_flight s buf rest
         | "slo", _ -> (
             match s.slo_report with
             | Some report -> Buffer.add_string buf report
             | None ->
                 out buf "no serve run yet (try: serve 3 12); default objectives:\n";
                 List.iter
                   (fun (o : Slo.objective) ->
                     out buf "  %-6s %3.0f%% under %.1fs\n" o.Slo.op (o.Slo.goal *. 100.)
                       o.Slo.latency_s)
                   Slo.default_objectives)
         | "metrics", [] -> Buffer.add_string buf (Metrics.render (Hac.metrics s.t))
         | "metrics", [ "-json" ] ->
             Buffer.add_string buf (Metrics.to_json (Hac.metrics s.t))
         | "metrics", [ "-prom" ] ->
             Buffer.add_string buf (Hac_obs.Export.render_prom (Hac.metrics s.t))
         | "metrics", [ "-jsonl" ] ->
             Buffer.add_string buf (Hac_obs.Export.to_jsonl (Hac.metrics s.t))
         | "profile", rest when rest <> [] ->
             (* Wrap the inner command in a root span with tracing forced
                on, then print that subtree; the previous tracing setting
                is restored either way. *)
             let tr = Hac.tracer s.t in
             let was = Trace.enabled tr in
             Trace.set_enabled tr true;
             let finish () = Trace.set_enabled tr was in
             (match
                Trace.with_span tr ~name:("profile:" ^ List.hd rest) (fun () ->
                    ignore (run s buf (String.concat " " rest)))
              with
             | () -> finish ()
             | exception e ->
                 finish ();
                 raise e);
             let tr = Hac.tracer s.t in
             Buffer.add_string buf (Trace.render_last tr);
             (match Trace.last_subtree tr with
             | [] -> ()
             | spans ->
                 (* Aggregate the subtree per span name: how often each
                    stage ran and where the time went. *)
                 let agg = Hashtbl.create 8 in
                 let order = ref [] in
                 List.iter
                   (fun sp ->
                     let name = sp.Trace.name in
                     let c, v, cpu =
                       match Hashtbl.find_opt agg name with
                       | Some x -> x
                       | None ->
                           order := name :: !order;
                           (0, 0.0, 0.0)
                     in
                     Hashtbl.replace agg name
                       (c + 1, v +. Trace.v_duration sp, cpu +. Trace.cpu_duration sp))
                   spans;
                 out buf "\n  stage                        count     v (ms)   cpu (ms)\n";
                 List.iter
                   (fun name ->
                     let c, v, cpu = Hashtbl.find agg name in
                     out buf "  %-28s %5d %10.3f %10.3f\n" name c (v *. 1000.)
                       (cpu *. 1000.))
                   (List.rev !order);
                 (* Verdict against the interactive (read) objective: the
                    root span closes last, so it is the newest in the ring. *)
                 match List.rev spans with
                 | [] -> ()
                 | root :: _ ->
                     let v = Trace.v_duration root in
                     let target =
                       match
                         List.find_opt (fun o -> o.Slo.op = "read") Slo.default_objectives
                       with
                       | Some o -> o.Slo.latency_s
                       | None -> 2.0
                     in
                     out buf "  slo verdict: %s (v=%.3fs vs read target %.2fs)\n"
                       (if v <= target then "ok" else "breach")
                       v target)
         | _, _ -> out buf "unknown or malformed command (try: help)\n"
       with
      | Errno.Error (code, subject) -> out buf "error: %s: %s\n" subject (Errno.message code)
      | Hac.Hac_error msg -> out buf "error: %s\n" msg);
      true

let run_string s input =
  let buf = Buffer.create 256 in
  List.iter (fun line -> ignore (run s buf line)) (String.split_on_char ';' input);
  Buffer.contents buf
