type op =
  | Mkdir of string
  | Create of string
  | Write of string * string
  | Append of string * string
  | Pwrite of string * int * string
  | Unlink of string
  | Rmdir of string
  | Symlink of { target : string; link : string }
  | Rename of { src : string; dst : string }
  | Rename_dup of { src : string; dst : string }
  | Chmod of string * int
  | Chown of string * int
  | Fsync of string

type t = {
  seed : int;
  mutable ops : op array;  (* valid entries are [0, n) *)
  mutable n : int;
  mutable durable : int;  (* ops before this index survive any crash *)
  mutable fsyncs : int;
  mutable dropped : int;
  mutable drop_budget : int;  (* fsync barriers left to swallow *)
}

let create ?(seed = 0) () =
  {
    seed = seed lor 1;
    ops = Array.make 64 (Fsync "/");
    n = 0;
    durable = 0;
    fsyncs = 0;
    dropped = 0;
    drop_budget = 0;
  }

let reset t =
  t.ops <- Array.make 64 (Fsync "/");
  t.n <- 0;
  t.durable <- 0;
  t.fsyncs <- 0;
  t.dropped <- 0;
  t.drop_budget <- 0

let record t op =
  if t.n = Array.length t.ops then begin
    let bigger = Array.make (2 * t.n) op in
    Array.blit t.ops 0 bigger 0 t.n;
    t.ops <- bigger
  end;
  t.ops.(t.n) <- op;
  t.n <- t.n + 1;
  match op with
  | Fsync _ ->
      if t.drop_budget > 0 then begin
        t.drop_budget <- t.drop_budget - 1;
        t.dropped <- t.dropped + 1
      end
      else begin
        t.fsyncs <- t.fsyncs + 1;
        t.durable <- t.n
      end
  | _ -> ()

let op_count t = t.n
let durable_count t = t.durable

let ops ?upto t =
  let upto = match upto with None -> t.n | Some k -> max 0 (min k t.n) in
  Array.to_list (Array.sub t.ops 0 upto)

let drop_fsyncs t n = t.drop_budget <- max 0 n
let fsync_count t = t.fsyncs
let dropped_fsync_count t = t.dropped

(* ---- fault transforms ---- *)

let payload_length = function
  | Write (_, s) | Append (_, s) | Pwrite (_, _, s) -> String.length s
  | Mkdir _ | Create _ | Unlink _ | Rmdir _ | Symlink _ | Rename _
  | Rename_dup _ | Chmod _ | Chown _ | Fsync _ ->
      0

let torn op ~keep =
  if keep <= 0 then None
  else
    match op with
    | Write (p, s) when keep < String.length s -> Some (Write (p, String.sub s 0 keep))
    | Append (p, s) when keep < String.length s -> Some (Append (p, String.sub s 0 keep))
    | Pwrite (p, pos, s) when keep < String.length s ->
        Some (Pwrite (p, pos, String.sub s 0 keep))
    | Write _ | Append _ | Pwrite _ -> Some op
    | Rename { src; dst } -> Some (Rename_dup { src; dst })
    | Mkdir _ | Create _ | Unlink _ | Rmdir _ | Symlink _ | Rename_dup _
    | Chmod _ | Chown _ | Fsync _ ->
        None

let flip_byte s at =
  let len = String.length s in
  if len = 0 then s
  else
    let at = at mod len in
    let bit = 1 lsl (at mod 8) in
    String.mapi (fun i c -> if i = at then Char.chr (Char.code c lxor bit) else c) s

let flipped op ~at =
  match op with
  | Write (p, s) when s <> "" -> Some (Write (p, flip_byte s at))
  | Append (p, s) when s <> "" -> Some (Append (p, flip_byte s at))
  | Pwrite (p, pos, s) when s <> "" -> Some (Pwrite (p, pos, flip_byte s at))
  | _ -> None

let shortened = torn

let interrupted = function
  | Rename { src; dst } -> Some (Rename_dup { src; dst })
  | _ -> None

(* One SplitMix step over [seed + content hash]; same mixing constants as
   the call-level injector in fault.ml so one seed convention covers both. *)
let mix seed h =
  let z = ref ((seed + h + 0x9e3779b9) land max_int) in
  z := (!z lxor (!z lsr 16)) * 0x21f0aaad;
  z := (!z lxor (!z lsr 15)) * 0x735a2d97;
  z := !z lxor (!z lsr 15);
  !z land max_int

let op_hash op = Hashtbl.hash op

let tear_point t op =
  let len = payload_length op in
  if len = 0 then 0 else mix t.seed (op_hash op) mod len

let flip_point t op =
  let len = payload_length op in
  if len = 0 then 0 else mix t.seed (op_hash op + 1) mod len

let abbrev s = if String.length s <= 18 then s else String.sub s 0 15 ^ "..."

let to_string = function
  | Mkdir p -> "mkdir " ^ p
  | Create p -> "create " ^ p
  | Write (p, s) -> Printf.sprintf "write %s [%dB %S]" p (String.length s) (abbrev s)
  | Append (p, s) -> Printf.sprintf "append %s [%dB %S]" p (String.length s) (abbrev s)
  | Pwrite (p, pos, s) -> Printf.sprintf "pwrite %s @%d [%dB]" p pos (String.length s)
  | Unlink p -> "unlink " ^ p
  | Rmdir p -> "rmdir " ^ p
  | Symlink { target; link } -> Printf.sprintf "symlink %s -> %s" link target
  | Rename { src; dst } -> Printf.sprintf "rename %s -> %s" src dst
  | Rename_dup { src; dst } -> Printf.sprintf "rename* %s -> %s (torn)" src dst
  | Chmod (p, m) -> Printf.sprintf "chmod %s %o" p m
  | Chown (p, u) -> Printf.sprintf "chown %s %d" p u
  | Fsync p -> "fsync " ^ p
