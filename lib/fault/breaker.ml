type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  probe_interval : float;
  success_to_close : int;
}

let default_config = { failure_threshold = 3; probe_interval = 30.0; success_to_close = 1 }

type t = {
  config : config;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_successes : int;
  mutable trips : int;
}

let create ?(config = default_config) () =
  {
    config;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    probe_successes = 0;
    trips = 0;
  }

let config t = t.config

let state t = t.state

let trip t ~now =
  t.state <- Open;
  t.opened_at <- now;
  t.probe_successes <- 0;
  t.trips <- t.trips + 1

let allow t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if now -. t.opened_at >= t.config.probe_interval then begin
        t.state <- Half_open;
        t.probe_successes <- 0;
        true
      end
      else false

let record_success t =
  match t.state with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.config.success_to_close then begin
        t.state <- Closed;
        t.consecutive_failures <- 0
      end
  | Open -> () (* success report for a call admitted before the trip *)

let record_failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open -> trip t ~now
  | Closed -> if t.consecutive_failures >= t.config.failure_threshold then trip t ~now
  | Open -> ()

let consecutive_failures t = t.consecutive_failures

let trips t = t.trips

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"
