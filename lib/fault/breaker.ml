type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;
  probe_interval : float;
  success_to_close : int;
}

let default_config = { failure_threshold = 3; probe_interval = 30.0; success_to_close = 1 }

type t = {
  config : config;
  on_transition : state -> state -> unit;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_successes : int;
  mutable trips : int;
}

let create ?(config = default_config) ?(on_transition = fun _ _ -> ()) () =
  {
    config;
    on_transition;
    state = Closed;
    consecutive_failures = 0;
    opened_at = 0.0;
    probe_successes = 0;
    trips = 0;
  }

let config t = t.config

let state t = t.state

let set_state t s =
  if t.state <> s then begin
    let old = t.state in
    t.state <- s;
    t.on_transition old s
  end

let trip t ~now =
  t.opened_at <- now;
  t.probe_successes <- 0;
  t.trips <- t.trips + 1;
  set_state t Open

let allow t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      if now -. t.opened_at >= t.config.probe_interval then begin
        t.probe_successes <- 0;
        set_state t Half_open;
        true
      end
      else false

let record_success t =
  match t.state with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.config.success_to_close then begin
        t.consecutive_failures <- 0;
        set_state t Closed
      end
  | Open -> () (* success report for a call admitted before the trip *)

let record_failure t ~now =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.state with
  | Half_open -> trip t ~now
  | Closed -> if t.consecutive_failures >= t.config.failure_threshold then trip t ~now
  | Open -> ()

let consecutive_failures t = t.consecutive_failures

let trips t = t.trips

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"
