type t = { mutable now : float }

let create ?(start = 0.0) () = { now = start }

let now t = t.now

let advance t dt = if dt > 0.0 then t.now <- t.now +. dt
