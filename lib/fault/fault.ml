exception Injected of string

type plan =
  | Fail_times of int
  | Outage
  | Latency of float
  | Corrupt
  | Flaky of float

type t = {
  clock : Clock.t;
  mutable plans : plan list;
  mutable rng : int;
  mutable calls : int;
  mutable injected : int;
}

let create ?(seed = 1) ~clock () =
  { clock; plans = []; rng = (seed lor 1) land max_int; calls = 0; injected = 0 }

let set_plans t plans = t.plans <- plans

let add_plan t plan = t.plans <- t.plans @ [ plan ]

let clear t = t.plans <- []

let plans t = t.plans

(* One SplitMix step; returns a unit float in [0, 1). *)
let next_unit t =
  let z = ref ((t.rng + 0x9e3779b9) land max_int) in
  z := (!z lxor (!z lsr 16)) * 0x21f0aaad;
  z := (!z lxor (!z lsr 15)) * 0x735a2d97;
  z := !z lxor (!z lsr 15);
  t.rng <- !z land max_int;
  float_of_int (!z land 0xFFFFFF) /. float_of_int 0x1000000

let guard t ~op f =
  t.calls <- t.calls + 1;
  let failing = ref false in
  t.plans <-
    List.filter_map
      (fun plan ->
        match plan with
        | Fail_times n when n > 0 ->
            failing := true;
            if n = 1 then None else Some (Fail_times (n - 1))
        | Fail_times _ -> None
        | Outage ->
            failing := true;
            Some plan
        | Latency d ->
            (* Not a failure by itself: the call merely takes this long.
               Resilience policies turn it into a timeout when the charged
               time blows their per-call deadline. *)
            Clock.advance t.clock d;
            Some plan
        | Corrupt -> Some plan
        | Flaky p ->
            if next_unit t < p then failing := true;
            Some plan)
      t.plans;
  if !failing then begin
    t.injected <- t.injected + 1;
    raise (Injected op)
  end
  else f ()

let mangle t payload =
  if not (List.exists (fun p -> p = Corrupt) t.plans) then payload
  else
    (* Deterministic length-preserving scramble: xor each byte with a
       keystream drawn from the seeded PRNG, keeping the result printable
       enough to flow through tokenizers without meaning anything. *)
    String.init (String.length payload) (fun i ->
        let k = int_of_float (next_unit t *. 256.0) land 0xFF in
        let c = (Char.code payload.[i] + k) land 0x7F in
        if c < 0x20 then ' ' else Char.chr c)

let calls t = t.calls

let injected t = t.injected

let plan_to_string = function
  | Fail_times n -> Printf.sprintf "fail %d" n
  | Outage -> "outage"
  | Latency d -> Printf.sprintf "latency %.2fs" d
  | Corrupt -> "corrupt"
  | Flaky p -> Printf.sprintf "flaky %.2f" p
