(** A virtual clock.

    Everything in this reproduction is simulated, so time is too: remote
    latency, retry backoff and circuit-breaker probe intervals all advance a
    shared mutable clock instead of sleeping.  Tests (and the shell's
    [fault tick] command) move time forward explicitly, which keeps every
    failure scenario deterministic and instant to run. *)

type t
(** One clock; typically one per {!Hac_core.Hac} instance. *)

val create : ?start:float -> unit -> t
(** A clock reading [start] (default [0.0]) seconds. *)

val now : t -> float
(** Current virtual time in seconds. *)

val advance : t -> float -> unit
(** Move time forward by a non-negative number of seconds (negative
    amounts are ignored — time never runs backwards). *)
