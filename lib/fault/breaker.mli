(** A three-state circuit breaker.

    Guards calls to an unreliable dependency: after [failure_threshold]
    consecutive failures the breaker {e opens} and rejects calls outright
    (callers degrade instead of hammering a dead remote).  Once
    [probe_interval] virtual seconds have passed, the next call is let
    through as a {e half-open} probe; [success_to_close] consecutive probe
    successes close the breaker again, while any probe failure re-opens it
    and restarts the interval. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** Consecutive failures that trip the breaker. *)
  probe_interval : float;  (** Seconds an open breaker waits before probing. *)
  success_to_close : int;  (** Probe successes required to close again. *)
}

val default_config : config
(** 3 failures to trip, 30 s probe interval, 1 success to close. *)

type t

val create : ?config:config -> ?on_transition:(state -> state -> unit) -> unit -> t
(** A closed breaker.  [on_transition old new_] fires on every state
    change (closed→open, open→half-open, half-open→closed,
    half-open→open) — an observability hook; it must not call back into
    the breaker. *)

val config : t -> config

val state : t -> state
(** Current state (does not consult the clock; an [Open] breaker stays
    [Open] until a call is actually allowed through as a probe). *)

val allow : t -> now:float -> bool
(** Whether a call may proceed at virtual time [now].  [Closed] and
    [Half_open] always allow; [Open] allows (and transitions to
    [Half_open]) once the probe interval has elapsed. *)

val record_success : t -> unit
(** Report a successful call: resets the failure streak; in [Half_open],
    counts toward closing. *)

val record_failure : t -> now:float -> unit
(** Report a failed call at time [now]: extends the failure streak and
    trips to [Open] at the threshold; a [Half_open] probe failure re-opens
    immediately. *)

val consecutive_failures : t -> int
(** Length of the current failure streak. *)

val trips : t -> int
(** How many times the breaker has transitioned to [Open]. *)

val state_name : state -> string
(** ["closed"], ["open"] or ["half-open"]. *)
