(** A deterministic, seedable fault injector.

    Wraps any provider-style call site so tests, the shell and the bench
    can simulate the failure modes the paper attributes to remote CBA
    servers (slow, intermittently unavailable, occasionally returning
    garbage) without any real network.  Faults are described by {!plan}s;
    the injector is consulted through {!guard} (may delay on the virtual
    clock and raise {!Injected}) and {!mangle} (may corrupt a payload).

    Determinism: probabilistic plans draw from a SplitMix-style PRNG
    seeded at {!create}, so a given seed replays the exact same failure
    sequence. *)

exception Injected of string
(** Raised by {!guard} when the active plans fail the call; the payload
    is the operation name (e.g. ["search"]).  Latency plans never raise —
    they only charge the clock, and it is the resilience policy's per-call
    deadline that turns a slow call into a timeout failure. *)

type plan =
  | Fail_times of int  (** The next [n] guarded calls fail, then health returns. *)
  | Outage  (** Every call fails until the plan is cleared. *)
  | Latency of float  (** Every call costs this many virtual seconds. *)
  | Corrupt  (** Payloads passed through {!mangle} come back as garbage. *)
  | Flaky of float  (** Each call fails with this probability (seeded). *)

type t

val create : ?seed:int -> clock:Clock.t -> unit -> t
(** A healthy injector (no plans active). *)

val set_plans : t -> plan list -> unit
(** Replace the active plans. *)

val add_plan : t -> plan -> unit
(** Add one plan on top of the active ones. *)

val clear : t -> unit
(** Drop every plan: the injector becomes a no-op. *)

val plans : t -> plan list
(** Currently active plans ([Fail_times] reflects the remaining count). *)

val guard : t -> op:string -> (unit -> 'a) -> 'a
(** Run the call under the active plans: charge latency to the clock,
    then either raise {!Injected} or run the wrapped call. *)

val mangle : t -> string -> string
(** The payload, corrupted when a [Corrupt] plan is active (deterministic
    byte scrambling that preserves length), unchanged otherwise. *)

val calls : t -> int
(** Guarded calls seen so far. *)

val injected : t -> int
(** Failures injected so far. *)

val plan_to_string : plan -> string
(** Human-readable form, e.g. ["fail 3"], ["outage"], ["latency 0.50s"]. *)
