(** Exponential retry backoff with deterministic jitter.

    The delay before retry attempt [n] (0-based) is
    [base * factor^n], capped at [max_delay], then spread by a jitter
    factor derived from a hash of [(seed, attempt)] — deterministic for a
    given seed, so tests replay exactly, yet decorrelated across callers
    the way real jitter must be to avoid thundering herds. *)

type t = {
  base : float;  (** First-retry delay in (virtual) seconds. *)
  factor : float;  (** Multiplier per attempt ([>= 1.0]). *)
  max_delay : float;  (** Upper bound on the un-jittered delay. *)
  jitter : float;  (** Relative spread in [[0, 1]]: a delay [d] becomes
                       [d * (1 ± jitter)]. *)
}

val default : t
(** 50 ms base, doubling, capped at 5 s, ±10% jitter. *)

val delay : ?seed:int -> t -> attempt:int -> float
(** Delay in seconds before retry [attempt] (0-based).  Always
    non-negative; deterministic in [(seed, attempt)]. *)

val total_budget : ?seed:int -> t -> retries:int -> float
(** Sum of {!delay} over attempts [0 .. retries-1] — how much virtual time
    a full retry cycle consumes. *)
