(** A simulated storage device: the logical write-ahead op log of a file
    system instance, with a durability frontier and crash-fault transforms.

    The in-memory VFS ({!Hac_vfs.Fs}) is "RAM"; this module models the
    "disk" underneath it.  Every mutating syscall the VFS executes is
    {!record}ed here in order.  A crash throws away RAM, so the state that
    survives is some replay of a prefix of this log — at least the prefix
    up to the last acknowledged fsync (the {e durability frontier}), at
    most the whole log, and possibly with the first lost operation torn
    or bit-flipped rather than cleanly absent.

    The store is deliberately ignorant of the VFS: it holds descriptions
    of operations, not inodes.  Replaying an op list into a fresh tree
    lives in [lib/crash] ([Hac_crash.Sim.replay]), keeping the dependency
    order fault ← vfs ← core ← crash acyclic.

    The persistence model is {e in-order global}: operations become
    durable in the order they were issued, and an fsync on any path makes
    every earlier operation durable (syncfs semantics).  This is stricter
    than a real page cache, which may reorder; the crash matrix in
    [docs/fault-model.md] spells out what the simplification does and
    does not cover.

    Fault transforms ({!torn}, {!flipped}, {!shortened}, {!interrupted})
    are pure: they derive a damaged variant of one recorded op, and the
    harness decides where to apply them.  {!tear_point} and {!flip_point}
    draw deterministic pseudo-random offsets from the seed given at
    {!create}, so a seed replays the exact same damage. *)

type op =
  | Mkdir of string
  | Create of string  (** Empty regular file created. *)
  | Write of string * string  (** Whole-file create-or-truncate write. *)
  | Append of string * string  (** Bytes appended to the file. *)
  | Pwrite of string * int * string  (** Positioned write at an offset. *)
  | Unlink of string
  | Rmdir of string
  | Symlink of { target : string; link : string }
  | Rename of { src : string; dst : string }
  | Rename_dup of { src : string; dst : string }
      (** A rename that crashed halfway: the destination entry was
          written but the source entry was never removed.  Only produced
          by {!interrupted}, never {!record}ed directly. *)
  | Chmod of string * int
  | Chown of string * int
  | Fsync of string  (** Durability barrier (advances the frontier). *)

type t
(** One simulated device. *)

val create : ?seed:int -> unit -> t
(** An empty op log.  [seed] (default 0) drives {!tear_point} and
    {!flip_point}. *)

val record : t -> op -> unit
(** Append one operation.  [Fsync] ops advance the durability frontier
    to cover every operation recorded so far — unless fsync dropping is
    armed (see {!drop_fsyncs}), in which case the barrier is silently
    swallowed: the op is logged (so replay still sees a no-op) but the
    frontier does not move, modelling a device that acknowledges flushes
    it never performed. *)

val op_count : t -> int
(** Operations recorded so far. *)

val durable_count : t -> int
(** Length of the prefix guaranteed to survive a crash (ops up to and
    including the last honoured fsync). *)

val ops : ?upto:int -> t -> op list
(** The first [upto] operations in record order (default: all). *)

val drop_fsyncs : t -> int -> unit
(** Arm the device to swallow the next [n] fsync barriers. *)

val fsync_count : t -> int
(** Fsync barriers honoured so far. *)

val dropped_fsync_count : t -> int
(** Fsync barriers swallowed so far. *)

val reset : t -> unit
(** Forget everything: empty log, frontier zero, counters zero.  The
    seed is kept. *)

(** {1 Crash-fault transforms}

    Each returns the damaged variant of an op as it would appear on
    disk after the crash, or [None] when the op is all-or-nothing at
    this damage point (it simply did not happen). *)

val payload_length : op -> int
(** Bytes of payload the op carries (0 for metadata-only ops). *)

val torn : op -> keep:int -> op option
(** Torn write: only the first [keep] payload bytes reached the disk.
    [None] for metadata-only ops (they are atomic: either present or
    absent) and for [keep = 0].  A [Rename] becomes {!Rename_dup} —
    the halfway state of the two-entry update. *)

val flipped : op -> at:int -> op option
(** Media corruption: one bit flipped in the payload at byte offset
    [at] (reduced mod the payload length).  [None] for ops without
    payload bytes. *)

val shortened : op -> keep:int -> op option
(** Short read: the device returns only a [keep]-byte prefix of the
    payload when read back.  Same surface as {!torn} (a prefix), kept
    separate so call sites document which failure they model. *)

val interrupted : op -> op option
(** Mid-operation crash for two-step metadata updates: a [Rename]
    yields its {!Rename_dup} halfway state; all other ops are
    single-step and return [None]. *)

val tear_point : t -> op -> int
(** Deterministic tear offset in [0, payload_length) for this op, drawn
    from the store's seed and the op's position-independent content
    hash.  0 when the op has no payload. *)

val flip_point : t -> op -> int
(** Deterministic byte offset for {!flipped}, same scheme. *)

val to_string : op -> string
(** One-line rendering for traces and failure messages. *)
