type t = { base : float; factor : float; max_delay : float; jitter : float }

let default = { base = 0.05; factor = 2.0; max_delay = 5.0; jitter = 0.1 }

(* SplitMix-style integer mixer: a cheap, well-distributed hash that keeps
   the jitter deterministic in (seed, attempt). *)
let mix seed attempt =
  let z = ref (seed * 0x9e3779b9 + attempt + 0x85ebca6b) in
  z := (!z lxor (!z lsr 16)) * 0x21f0aaad;
  z := (!z lxor (!z lsr 15)) * 0x735a2d97;
  z := !z lxor (!z lsr 15);
  !z land max_int

(* A unit float in [0, 1) from the mixed bits. *)
let unit_float seed attempt =
  float_of_int (mix seed attempt land 0xFFFFFF) /. float_of_int 0x1000000

let delay ?(seed = 0) t ~attempt =
  let attempt = max 0 attempt in
  let raw = t.base *. (t.factor ** float_of_int attempt) in
  let capped = Float.min raw t.max_delay in
  let spread = (2.0 *. unit_float seed attempt) -. 1.0 in
  Float.max 0.0 (capped *. (1.0 +. (t.jitter *. spread)))

let total_budget ?seed t ~retries =
  let acc = ref 0.0 in
  for attempt = 0 to retries - 1 do
    acc := !acc +. delay ?seed t ~attempt
  done;
  !acc
