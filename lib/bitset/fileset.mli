(** Immutable sets of file identifiers, stored as roaring-style compressed
    containers ({!Roaring}): 2^16-keyed chunks, each a sorted array, bitmap,
    or run container, chosen canonically per chunk.  All operations are
    functional, which is what the query evaluator wants: query results flow
    through AND/OR/NOT combinators without aliasing hazards. *)

type t
(** An immutable set of non-negative file identifiers. *)

val empty : t
(** The empty set. *)

val singleton : int -> t
(** One-element set. *)

val of_list : int list -> t
(** Set of the listed identifiers. *)

val of_bitset : Bitset.t -> t
(** Snapshot of a mutable bitmap, streamed directly into containers (no
    intermediate copy of the bitmap's word array). *)

val of_increasing_iter : ((int -> unit) -> unit) -> t
(** [of_increasing_iter it] builds a set from a strictly increasing push
    stream in one pass.  [it] must push values in strictly increasing order. *)

val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi}]; empty when [lo > hi]. *)

val mem : t -> int -> bool
(** Membership test. *)

val add : t -> int -> t
(** Functional insert. *)

val remove : t -> int -> t
(** Functional delete. *)

val union : t -> t -> t
(** Set union. *)

val inter : t -> t -> t
(** Set intersection. *)

val diff : t -> t -> t
(** Set difference. *)

val inter_many : t list -> t
(** Intersection of all listed sets, evaluated rarest-first at container
    granularity without materializing pairwise intermediates.
    [inter_many []] is [empty]. *)

val cardinal : t -> int
(** Number of elements. *)

val is_empty : t -> bool
(** [is_empty s] iff [cardinal s = 0]. *)

val equal : t -> t -> bool
(** Extensional equality.  Short-circuits on cardinality and chunk keys
    before touching container payloads. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b].  Short-circuits on
    cardinality and missing chunk keys. *)

val iter : (int -> unit) -> t -> unit
(** Iterate in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold in increasing order. *)

val filter : (int -> bool) -> t -> t
(** Keep the elements satisfying the predicate. *)

val elements : t -> int list
(** Elements in increasing order. *)

val choose_opt : t -> int option
(** Smallest element, or [None] when empty. *)

val max_elt_opt : t -> int option
(** Largest element, or [None] when empty. *)

val byte_size : t -> int
(** Payload bytes of the current representation. *)

val is_dense : t -> bool
(** [true] when at least one chunk is stored compressed (bitmap or run
    container) rather than as a plain sorted array. *)

type container_stats = {
  containers : int;
  arrays : int;
  bitmaps : int;
  run_containers : int;
  bytes : int;
}

val container_stats : t -> container_stats
(** Per-container-type histogram and payload bytes of the representation. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 5, 9}]. *)

(** Mutable accumulator for index maintenance: chunk bitmaps updated in
    place, snapshotted into the immutable form on demand (cached until the
    next mutation).  Mutations must be single-domain; snapshots may be taken
    concurrently. *)
module Builder : sig
  type fileset := t
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val mem : t -> int -> bool
  val cardinal : t -> int
  val snapshot : t -> fileset
  val clear : t -> unit
end
