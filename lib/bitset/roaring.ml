(* Roaring-style compressed integer sets.

   The universe is split into 2^16-element chunks keyed by the high bits of
   the value; each populated chunk stores its low 16 bits in whichever of
   three container shapes is smallest:

     Arr  — sorted array of values          (n words)        small sets
     Bmp  — 65536-bit bitmap                (1041 words)     dense sets
     Run  — sorted (start, last) intervals  (2k words)       clustered sets

   The choice is canonical: it depends only on the chunk's cardinality and
   run count, so two equal sets always have identical representations and
   structural comparison of containers is valid set equality.  All values
   are immutable; mutation lives in {!builder}, which accumulates chunk
   bitmaps destructively and snapshots into the immutable form on demand. *)

let bpw = Sys.int_size
let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits
let low_mask = chunk_size - 1
let bmp_words = (chunk_size + bpw - 1) / bpw
let arr_max = 4096

type container =
  | Arr of int array
  | Bmp of { w : int array; n : int }
  | Run of { r : int array; n : int }  (* flattened (start, last) pairs, inclusive *)

type t = { keys : int array; cs : container array }

let empty = { keys = [||]; cs = [||] }

let c_card = function Arr a -> Array.length a | Bmp b -> b.n | Run r -> r.n

(* -- word helpers ---------------------------------------------------------- *)

let popcount =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  fun x -> go 0 x

(* All-ones mask of the given width (width <= bpw); width = bpw yields every
   usable bit set, which is what [-1] is on a native int. *)
let mask_of_width width = if width >= bpw then -1 else (1 lsl width) - 1

(* Mask selecting bits [lo..hi] (inclusive) of one word. *)
let word_mask lo hi = mask_of_width (hi - lo + 1) lsl lo

(* -- run counting (canonicalization input) --------------------------------- *)

let runs_of_sorted_array a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) + 1 then incr k
    done;
    !k
  end

let runs_of_words w =
  (* A run starts at every set bit whose predecessor bit is clear; the
     predecessor of bit 0 is the previous word's top bit. *)
  let k = ref 0 in
  let carry = ref 0 in
  for i = 0 to Array.length w - 1 do
    let x = w.(i) in
    k := !k + popcount (x land lnot ((x lsl 1) lor !carry));
    carry := (x lsr (bpw - 1)) land 1
  done;
  !k

(* -- conversions between shapes -------------------------------------------- *)

let iter_words_bits f w =
  for i = 0 to Array.length w - 1 do
    let x = w.(i) in
    if x <> 0 then begin
      let base = i * bpw in
      let x = ref x in
      while !x <> 0 do
        let b = !x land - !x in
        let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
        f (base + log2 b 0);
        x := !x land (!x - 1)
      done
    end
  done

let arr_of_words w n =
  let a = Array.make n 0 in
  let out = ref 0 in
  iter_words_bits
    (fun v ->
      a.(!out) <- v;
      incr out)
    w;
  a

let arr_of_runs r n =
  let a = Array.make n 0 in
  let out = ref 0 in
  let len = Array.length r in
  let i = ref 0 in
  while !i < len do
    for v = r.(!i) to r.(!i + 1) do
      a.(!out) <- v;
      incr out
    done;
    i := !i + 2
  done;
  a

let set_range w lo hi =
  let w0 = lo / bpw and w1 = hi / bpw in
  if w0 = w1 then w.(w0) <- w.(w0) lor word_mask (lo mod bpw) (hi mod bpw)
  else begin
    w.(w0) <- w.(w0) lor word_mask (lo mod bpw) (bpw - 1);
    for i = w0 + 1 to w1 - 1 do
      w.(i) <- -1
    done;
    w.(w1) <- w.(w1) lor word_mask 0 (hi mod bpw)
  end

let words_of_container = function
  | Bmp b -> Array.copy b.w
  | Arr a ->
      let w = Array.make bmp_words 0 in
      Array.iter (fun v -> w.(v / bpw) <- w.(v / bpw) lor (1 lsl (v mod bpw))) a;
      w
  | Run r ->
      let w = Array.make bmp_words 0 in
      let i = ref 0 in
      while !i < Array.length r.r do
        set_range w r.r.(!i) r.r.(!i + 1);
        i := !i + 2
      done;
      w

let runs_of_sorted_array_pairs a k =
  let r = Array.make (2 * k) 0 in
  let out = ref 0 in
  let n = Array.length a in
  let i = ref 0 in
  while !i < n do
    let start = a.(!i) in
    let j = ref !i in
    while !j + 1 < n && a.(!j + 1) = a.(!j) + 1 do
      incr j
    done;
    r.(!out) <- start;
    r.(!out + 1) <- a.(!j);
    out := !out + 2;
    i := !j + 1
  done;
  r

let runs_of_words_pairs w k n =
  ignore n;
  let r = Array.make (2 * k) 0 in
  let out = ref 0 in
  let in_run = ref false in
  let total = Array.length w * bpw in
  let word_at i = w.(i) in
  let bit v = word_at (v / bpw) land (1 lsl (v mod bpw)) <> 0 in
  (* Straightforward bit scan: only taken when the run shape wins, i.e. the
     chunk is heavily clustered, so the scan is dominated by long runs that
     are skipped wordwise below. *)
  let v = ref 0 in
  while !v < total do
    if (not !in_run) && word_at (!v / bpw) = 0 && !v mod bpw = 0 then v := !v + bpw
    else begin
      if bit !v then begin
        if not !in_run then begin
          r.(!out) <- !v;
          in_run := true
        end
      end
      else if !in_run then begin
        r.(!out + 1) <- !v - 1;
        out := !out + 2;
        in_run := false
      end;
      incr v
    end
  done;
  if !in_run then begin
    r.(!out + 1) <- total - 1;
    out := !out + 2
  end;
  r

(* -- canonical packing ------------------------------------------------------

   Decision function of (cardinality n, run count k) only:
     - Run when it strictly beats the array shape (2k + 2 < n) and fits
       under the bitmap shape (2k < bmp_words);
     - otherwise Arr when n <= arr_max;
     - otherwise Bmp. *)

let run_wins n k = (2 * k) + 2 < n && 2 * k < bmp_words

let pack_sorted_array a =
  let n = Array.length a in
  let k = runs_of_sorted_array a in
  if run_wins n k then Run { r = runs_of_sorted_array_pairs a k; n }
  else if n <= arr_max then Arr a
  else Bmp { w = words_of_container (Arr a); n }

let pack_words w =
  let n = Array.fold_left (fun acc x -> acc + popcount x) 0 w in
  if n = 0 then None
  else begin
    let k = runs_of_words w in
    if run_wins n k then Some (Run { r = runs_of_words_pairs w k n; n })
    else if n <= arr_max then Some (Arr (arr_of_words w n))
    else Some (Bmp { w; n })
  end

let pack_runs r =
  let n =
    let acc = ref 0 in
    let i = ref 0 in
    while !i < Array.length r do
      acc := !acc + r.(!i + 1) - r.(!i) + 1;
      i := !i + 2
    done;
    !acc
  in
  let k = Array.length r / 2 in
  if n = 0 then None
  else if run_wins n k then Some (Run { r; n })
  else if n <= arr_max then Some (Arr (arr_of_runs r n))
  else Some (Bmp { w = words_of_container (Run { r; n }); n })

(* -- container membership --------------------------------------------------- *)

let arr_mem a v =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true else if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let run_mem r v =
  (* Binary search over run starts: find the last run starting at or before v. *)
  let k = Array.length r / 2 in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if r.(2 * mid) <= v then go (mid + 1) hi else go lo mid
  in
  let i = go 0 k in
  i >= 0 && v <= r.((2 * i) + 1)

let c_mem c v =
  match c with
  | Arr a -> arr_mem a v
  | Bmp b -> b.w.(v / bpw) land (1 lsl (v mod bpw)) <> 0
  | Run r -> run_mem r.r v

(* -- container iteration ---------------------------------------------------- *)

let c_iter f = function
  | Arr a -> Array.iter f a
  | Bmp b -> iter_words_bits f b.w
  | Run r ->
      let i = ref 0 in
      while !i < Array.length r.r do
        for v = r.r.(!i) to r.r.(!i + 1) do
          f v
        done;
        i := !i + 2
      done

let c_max = function
  | Arr a -> a.(Array.length a - 1)
  | Run r -> r.r.(Array.length r.r - 1)
  | Bmp b ->
      let rec hunt i =
        if b.w.(i) = 0 then hunt (i - 1)
        else begin
          let x = b.w.(i) in
          let rec top x acc = if x = 0 then acc - 1 else top (x lsr 1) (acc + 1) in
          (i * bpw) + top x 0
        end
      in
      hunt (Array.length b.w - 1)

let c_min = function
  | Arr a -> a.(0)
  | Run r -> r.r.(0)
  | Bmp b ->
      let rec hunt i =
        if b.w.(i) = 0 then hunt (i + 1)
        else begin
          let x = b.w.(i) in
          let rec low bit = if x land (1 lsl bit) <> 0 then bit else low (bit + 1) in
          (i * bpw) + low 0
        end
      in
      hunt 0

(* -- array kernels ----------------------------------------------------------

   Intersection gallops when one side is much smaller: each element of the
   small side advances through the large side by exponential probing, so the
   cost is |small| * log |large| instead of |small| + |large|. *)

let gallop_threshold = 32

(* First index >= [from] whose value is >= v, by exponential search. *)
let gallop a from v =
  let n = Array.length a in
  if from >= n || a.(from) >= v then from
  else begin
    let step = ref 1 in
    let lo = ref from in
    while !lo + !step < n && a.(!lo + !step) < v do
      lo := !lo + !step;
      step := !step * 2
    done;
    let hi = min n (!lo + !step + 1) in
    let rec bin lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then bin (mid + 1) hi else bin lo mid
    in
    bin (!lo + 1) hi
  end

let arr_inter_gallop small large =
  let out = Array.make (Array.length small) 0 in
  let n = ref 0 in
  let pos = ref 0 in
  (try
     Array.iter
       (fun v ->
         pos := gallop large !pos v;
         if !pos >= Array.length large then raise Exit;
         if large.(!pos) = v then begin
           out.(!n) <- v;
           incr n
         end)
       small
   with Exit -> ());
  Array.sub out 0 !n

let arr_inter_linear a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (min la lb) 0 in
  let n = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if x > y then incr j
    else begin
      out.(!n) <- x;
      incr n;
      incr i;
      incr j
    end
  done;
  Array.sub out 0 !n

let arr_inter a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la * gallop_threshold < lb then arr_inter_gallop a b
  else if lb * gallop_threshold < la then arr_inter_gallop b a
  else arr_inter_linear a b

let arr_union a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let n = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      out.(!n) <- x;
      incr i
    end
    else if x > y then begin
      out.(!n) <- y;
      incr j
    end
    else begin
      out.(!n) <- x;
      incr i;
      incr j
    end;
    incr n
  done;
  while !i < la do
    out.(!n) <- a.(!i);
    incr n;
    incr i
  done;
  while !j < lb do
    out.(!n) <- b.(!j);
    incr n;
    incr j
  done;
  Array.sub out 0 !n

let arr_diff a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let n = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      out.(!n) <- x;
      incr n;
      incr i
    end
    else if x > y then incr j
    else begin
      incr i;
      incr j
    end
  done;
  while !i < la do
    out.(!n) <- a.(!i);
    incr n;
    incr i
  done;
  Array.sub out 0 !n

let arr_filter p a =
  let out = Array.make (Array.length a) 0 in
  let n = ref 0 in
  Array.iter
    (fun v ->
      if p v then begin
        out.(!n) <- v;
        incr n
      end)
    a;
  if !n = Array.length a then a else Array.sub out 0 !n

(* -- run kernels ------------------------------------------------------------ *)

let run_inter ra rb =
  let la = Array.length ra and lb = Array.length rb in
  let buf = Array.make (la + lb) 0 in
  let out = ref 0 and i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let s = max ra.(!i) rb.(!j) and e = min ra.(!i + 1) rb.(!j + 1) in
    if s <= e then begin
      buf.(!out) <- s;
      buf.(!out + 1) <- e;
      out := !out + 2
    end;
    if ra.(!i + 1) < rb.(!j + 1) then i := !i + 2 else j := !j + 2
  done;
  Array.sub buf 0 !out

let run_union ra rb =
  let la = Array.length ra and lb = Array.length rb in
  let buf = Array.make (la + lb) 0 in
  let out = ref 0 and i = ref 0 and j = ref 0 in
  let push s e =
    if !out > 0 && s <= buf.(!out - 1) + 1 then
      buf.(!out - 1) <- max buf.(!out - 1) e
    else begin
      buf.(!out) <- s;
      buf.(!out + 1) <- e;
      out := !out + 2
    end
  in
  while !i < la || !j < lb do
    if !j >= lb || (!i < la && ra.(!i) <= rb.(!j)) then begin
      push ra.(!i) ra.(!i + 1);
      i := !i + 2
    end
    else begin
      push rb.(!j) rb.(!j + 1);
      j := !j + 2
    end
  done;
  Array.sub buf 0 !out

let run_diff ra rb =
  (* Subtract b's intervals from a's, emitting the surviving fragments. *)
  let la = Array.length ra and lb = Array.length rb in
  let buf = Array.make (la + lb + 2) 0 in
  let out = ref 0 in
  let push s e =
    buf.(!out) <- s;
    buf.(!out + 1) <- e;
    out := !out + 2
  in
  let j = ref 0 in
  let i = ref 0 in
  while !i < la do
    let s = ref ra.(!i) and e = ra.(!i + 1) in
    while !j < lb && rb.(!j + 1) < !s do
      j := !j + 2
    done;
    let jj = ref !j in
    let alive = ref true in
    while !alive && !jj < lb && rb.(!jj) <= e do
      let bs = rb.(!jj) and be = rb.(!jj + 1) in
      if bs > !s then push !s (min e (bs - 1));
      if be >= e then alive := false else s := max !s (be + 1);
      jj := !jj + 2
    done;
    if !alive && !s <= e then push !s e;
    i := !i + 2
  done;
  Array.sub buf 0 !out

let runs_of_arr a =
  let k = runs_of_sorted_array a in
  runs_of_sorted_array_pairs a k

(* -- container binary kernels ----------------------------------------------- *)

let c_inter ca cb =
  match (ca, cb) with
  | Arr a, Arr b ->
      let r = arr_inter a b in
      if Array.length r = 0 then None else Some (pack_sorted_array r)
  | Arr a, (Bmp _ as other) | (Bmp _ as other), Arr a
  | Arr a, (Run _ as other) | (Run _ as other), Arr a ->
      let r = arr_filter (c_mem other) a in
      if Array.length r = 0 then None else Some (pack_sorted_array r)
  | Bmp a, Bmp b ->
      let w = Array.make bmp_words 0 in
      for i = 0 to bmp_words - 1 do
        w.(i) <- a.w.(i) land b.w.(i)
      done;
      pack_words w
  | Bmp b, Run r | Run r, Bmp b ->
      (* Keep only b's bits inside r's intervals: build the run mask and AND. *)
      let m = words_of_container (Run r) in
      for i = 0 to bmp_words - 1 do
        m.(i) <- m.(i) land b.w.(i)
      done;
      pack_words m
  | Run a, Run b ->
      let r = run_inter a.r b.r in
      if Array.length r = 0 then None else pack_runs r

let c_union ca cb =
  match (ca, cb) with
  | Arr a, Arr b -> Some (pack_sorted_array (arr_union a b))
  | Arr a, Bmp b | Bmp b, Arr a ->
      let w = Array.copy b.w in
      let added = ref 0 in
      Array.iter
        (fun v ->
          let i = v / bpw and m = 1 lsl (v mod bpw) in
          if w.(i) land m = 0 then begin
            w.(i) <- w.(i) lor m;
            incr added
          end)
        a;
      let n = b.n + !added in
      let k = runs_of_words w in
      if run_wins n k then Some (Run { r = runs_of_words_pairs w k n; n })
      else Some (Bmp { w; n })
  | Arr a, Run r | Run r, Arr a -> pack_runs (run_union (runs_of_arr a) r.r)
  | Bmp a, Bmp b ->
      let w = Array.make bmp_words 0 in
      for i = 0 to bmp_words - 1 do
        w.(i) <- a.w.(i) lor b.w.(i)
      done;
      pack_words w
  | Bmp b, Run r | Run r, Bmp b ->
      let w = words_of_container (Run r) in
      for i = 0 to bmp_words - 1 do
        w.(i) <- w.(i) lor b.w.(i)
      done;
      pack_words w
  | Run a, Run b -> pack_runs (run_union a.r b.r)

let c_diff ca cb =
  match (ca, cb) with
  | Arr a, Arr b ->
      let r = arr_diff a b in
      if Array.length r = 0 then None else Some (pack_sorted_array r)
  | Arr a, other ->
      let r = arr_filter (fun v -> not (c_mem other v)) a in
      if Array.length r = 0 then None else Some (pack_sorted_array r)
  | Bmp b, Arr a ->
      let w = Array.copy b.w in
      Array.iter (fun v -> w.(v / bpw) <- w.(v / bpw) land lnot (1 lsl (v mod bpw))) a;
      pack_words w
  | Bmp a, Bmp b ->
      let w = Array.make bmp_words 0 in
      for i = 0 to bmp_words - 1 do
        w.(i) <- a.w.(i) land lnot b.w.(i)
      done;
      pack_words w
  | Bmp b, Run r ->
      let m = words_of_container (Run r) in
      for i = 0 to bmp_words - 1 do
        m.(i) <- b.w.(i) land lnot m.(i)
      done;
      pack_words m
  | Run a, Run b ->
      let r = run_diff a.r b.r in
      if Array.length r = 0 then None else pack_runs r
  | Run a, Arr b -> (
      match run_diff a.r (runs_of_arr b) with
      | [||] -> None
      | r -> pack_runs r)
  | Run a, (Bmp _ as other) ->
      let w = words_of_container (Run a) in
      let bw = words_of_container other in
      for i = 0 to bmp_words - 1 do
        w.(i) <- w.(i) land lnot bw.(i)
      done;
      pack_words w

let c_subset ca cb =
  c_card ca <= c_card cb
  &&
  match (ca, cb) with
  | Arr a, other -> Array.for_all (c_mem other) a
  | Bmp a, Bmp b ->
      let rec go i = i >= bmp_words || (a.w.(i) land lnot b.w.(i) = 0 && go (i + 1)) in
      go 0
  | Bmp _, (Arr _ | Run _) | Run _, _ -> (
      (* Containers are small-universe; falling back to per-element checks
         for the rare shapes keeps the kernel table short.  Run-in-run gets
         the interval walk since by_dir scopes hit it constantly. *)
      match (ca, cb) with
      | Run a, Run b ->
          let lb = Array.length b.r in
          let rec go i j =
            if i >= Array.length a.r then true
            else if j >= lb then false
            else if b.r.(j + 1) < a.r.(i) then go i (j + 2)
            else b.r.(j) <= a.r.(i) && a.r.(i + 1) <= b.r.(j + 1) && go (i + 2) j
          in
          go 0 0
      | _ ->
          let ok = ref true in
          c_iter (fun v -> if not (c_mem cb v) then ok := false) ca;
          !ok)

(* -- top-level structure ---------------------------------------------------- *)

let key_index t k =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if t.keys.(mid) = k then mid else if t.keys.(mid) < k then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.keys)

let cardinal t = Array.fold_left (fun acc c -> acc + c_card c) 0 t.cs

let is_empty t = Array.length t.keys = 0

let mem t v =
  if v < 0 then false
  else
    let i = key_index t (v lsr chunk_bits) in
    i >= 0 && c_mem t.cs.(i) (v land low_mask)

let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    let base = t.keys.(i) lsl chunk_bits in
    c_iter (fun v -> f (base + v)) t.cs.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun v -> acc := f v !acc) t;
  !acc

let elements t = List.rev (fold (fun v acc -> v :: acc) t [])

let choose_opt t =
  if is_empty t then None else Some ((t.keys.(0) lsl chunk_bits) + c_min t.cs.(0))

let max_elt_opt t =
  let n = Array.length t.keys in
  if n = 0 then None else Some ((t.keys.(n - 1) lsl chunk_bits) + c_max t.cs.(n - 1))

(* Merge the key spaces of two sets, combining containers pairwise.
   [keep_left]/[keep_right] say whether a chunk present on only one side
   survives (union/diff: left yes; inter: no). *)
let merge_keys ~keep_left ~keep_right ~combine a b =
  let la = Array.length a.keys and lb = Array.length b.keys in
  let keys = Array.make (la + lb) 0 in
  let cs = Array.make (la + lb) (Arr [||]) in
  let out = ref 0 and i = ref 0 and j = ref 0 in
  let push k c =
    keys.(!out) <- k;
    cs.(!out) <- c;
    incr out
  in
  while !i < la && !j < lb do
    let ka = a.keys.(!i) and kb = b.keys.(!j) in
    if ka < kb then begin
      if keep_left then push ka a.cs.(!i);
      incr i
    end
    else if ka > kb then begin
      if keep_right then push kb b.cs.(!j);
      incr j
    end
    else begin
      (match combine a.cs.(!i) b.cs.(!j) with Some c -> push ka c | None -> ());
      incr i;
      incr j
    end
  done;
  if keep_left then
    while !i < la do
      push a.keys.(!i) a.cs.(!i);
      incr i
    done;
  if keep_right then
    while !j < lb do
      push b.keys.(!j) b.cs.(!j);
      incr j
    done;
  { keys = Array.sub keys 0 !out; cs = Array.sub cs 0 !out }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else merge_keys ~keep_left:true ~keep_right:true ~combine:c_union a b

let inter a b =
  if is_empty a || is_empty b then empty
  else merge_keys ~keep_left:false ~keep_right:false ~combine:c_inter a b

let diff a b =
  if is_empty a || is_empty b then a
  else merge_keys ~keep_left:true ~keep_right:false ~combine:c_diff a b

(* Rarest-first n-way intersection without materializing pairwise
   intermediates: walk the smallest set's chunks, require the chunk key in
   every other set, and fold the per-chunk containers cheapest-first with
   an empty short-circuit.  The only allocations are per-surviving-chunk. *)
let inter_many sets =
  if List.exists is_empty sets then empty
  else
    match List.sort (fun a b -> compare (cardinal a) (cardinal b)) sets with
    | [] -> empty
    | [ s ] -> s
    | smallest :: rest ->
        let nk = Array.length smallest.keys in
        let keys = Array.make nk 0 in
        let cs = Array.make nk (Arr [||]) in
        let out = ref 0 in
        for i = 0 to nk - 1 do
          let k = smallest.keys.(i) in
          let containers = ref [ smallest.cs.(i) ] in
          let all = ref true in
          List.iter
            (fun s ->
              if !all then
                match key_index s k with
                | -1 -> all := false
                | j -> containers := s.cs.(j) :: !containers)
            rest;
          if !all then begin
            let ranked =
              List.sort (fun a b -> compare (c_card a) (c_card b)) !containers
            in
            let result =
              match ranked with
              | [] -> None
              | first :: others ->
                  List.fold_left
                    (fun acc c ->
                      match acc with None -> None | Some r -> c_inter r c)
                    (Some first) others
            in
            match result with
            | Some c ->
                keys.(!out) <- k;
                cs.(!out) <- c;
                incr out
            | None -> ()
          end
        done;
        { keys = Array.sub keys 0 !out; cs = Array.sub cs 0 !out }

(* Equality and inclusion short-circuit on cardinality and chunk keys before
   touching container payloads; containers are canonical, so payload
   comparison is structural. *)
let equal a b =
  a == b
  || (Array.length a.keys = Array.length b.keys
     && a.keys = b.keys
     && cardinal a = cardinal b
     && (let rec go i =
           i >= Array.length a.cs || (a.cs.(i) = b.cs.(i) && go (i + 1))
         in
         go 0))

let subset a b =
  a == b
  || (cardinal a <= cardinal b
     &&
     let rec go i =
       i >= Array.length a.keys
       ||
       match key_index b a.keys.(i) with
       | -1 -> false
       | j -> c_subset a.cs.(i) b.cs.(j) && go (i + 1)
     in
     go 0)

(* -- construction ----------------------------------------------------------- *)

(* Streaming constructor for strictly increasing sequences: chunk bitmaps
   are filled in place and packed when the key advances, so building from a
   sorted source is one pass with no intermediate set values. *)
type stream = {
  mutable s_keys : int list; (* reversed *)
  mutable s_cs : container list; (* reversed *)
  mutable s_key : int;
  mutable s_words : int array;
  mutable s_dirty : bool;
  mutable s_last : int;
}

let stream () =
  {
    s_keys = [];
    s_cs = [];
    s_key = -1;
    s_words = Array.make bmp_words 0;
    s_dirty = false;
    s_last = -1;
  }

let stream_flush s =
  if s.s_dirty then begin
    (match pack_words s.s_words with
    | Some c ->
        s.s_keys <- s.s_key :: s.s_keys;
        s.s_cs <- c :: s.s_cs
    | None -> ());
    s.s_words <- Array.make bmp_words 0;
    s.s_dirty <- false
  end

let stream_add s v =
  if v < 0 then invalid_arg "Roaring: negative element";
  if v <= s.s_last then invalid_arg "Roaring: stream not increasing";
  s.s_last <- v;
  let k = v lsr chunk_bits in
  if k <> s.s_key then begin
    stream_flush s;
    s.s_key <- k
  end;
  let low = v land low_mask in
  s.s_words.(low / bpw) <- s.s_words.(low / bpw) lor (1 lsl (low mod bpw));
  s.s_dirty <- true

let stream_finish s =
  stream_flush s;
  {
    keys = Array.of_list (List.rev s.s_keys);
    cs = Array.of_list (List.rev s.s_cs);
  }

let of_increasing_iter it =
  let s = stream () in
  it (stream_add s);
  stream_finish s

let of_list l =
  match List.sort_uniq compare l with
  | [] -> empty
  | x :: _ as sorted ->
      if x < 0 then invalid_arg "Roaring.of_list: negative element";
      of_increasing_iter (fun f -> List.iter f sorted)

let singleton v =
  if v < 0 then invalid_arg "Roaring.singleton: negative element";
  { keys = [| v lsr chunk_bits |]; cs = [| Arr [| v land low_mask |] |] }

let range lo hi =
  let lo = max 0 lo in
  if lo > hi then empty
  else begin
    let klo = lo lsr chunk_bits and khi = hi lsr chunk_bits in
    let nk = khi - klo + 1 in
    let keys = Array.init nk (fun i -> klo + i) in
    let cs =
      Array.init nk (fun i ->
          let k = klo + i in
          let s = if k = klo then lo land low_mask else 0 in
          let e = if k = khi then hi land low_mask else low_mask in
          match pack_runs [| s; e |] with Some c -> c | None -> assert false)
    in
    { keys; cs }
  end

let filter p t =
  of_increasing_iter (fun f -> iter (fun v -> if p v then f v) t)

(* Functional point updates: copy the spine, replace one container. *)
let replace_container t i c =
  let cs = Array.copy t.cs in
  cs.(i) <- c;
  { keys = t.keys; cs }

let insert_key t k c =
  let n = Array.length t.keys in
  let at =
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.keys.(mid) < k then go (mid + 1) hi else go lo mid
    in
    go 0 n
  in
  let keys = Array.make (n + 1) 0 and cs = Array.make (n + 1) c in
  Array.blit t.keys 0 keys 0 at;
  Array.blit t.cs 0 cs 0 at;
  keys.(at) <- k;
  Array.blit t.keys at keys (at + 1) (n - at);
  Array.blit t.cs at cs (at + 1) (n - at);
  { keys; cs }

let remove_key t i =
  let n = Array.length t.keys in
  let keys = Array.make (n - 1) 0 and cs = Array.make (n - 1) (Arr [||]) in
  Array.blit t.keys 0 keys 0 i;
  Array.blit t.cs 0 cs 0 i;
  Array.blit t.keys (i + 1) keys i (n - i - 1);
  Array.blit t.cs (i + 1) cs i (n - i - 1);
  { keys; cs }

let add t v =
  if v < 0 then invalid_arg "Roaring.add: negative element";
  let k = v lsr chunk_bits and low = v land low_mask in
  match key_index t k with
  | -1 -> insert_key t k (Arr [| low |])
  | i ->
      let c = t.cs.(i) in
      if c_mem c low then t
      else
        let c' =
          match c with
          | Arr a -> pack_sorted_array (arr_union a [| low |])
          | Bmp b ->
              let w = Array.copy b.w in
              w.(low / bpw) <- w.(low / bpw) lor (1 lsl (low mod bpw));
              Bmp { w; n = b.n + 1 }
          | Run r -> (
              match pack_runs (run_union r.r [| low; low |]) with
              | Some c -> c
              | None -> assert false)
        in
        replace_container t i c'

let remove t v =
  if v < 0 then t
  else
    let k = v lsr chunk_bits and low = v land low_mask in
    match key_index t k with
    | -1 -> t
    | i -> (
        let c = t.cs.(i) in
        if not (c_mem c low) then t
        else
          let c' =
            match c with
            | Arr a -> (
                let r = arr_diff a [| low |] in
                if Array.length r = 0 then None else Some (pack_sorted_array r))
            | Bmp b ->
                let w = Array.copy b.w in
                w.(low / bpw) <- w.(low / bpw) land lnot (1 lsl (low mod bpw));
                pack_words w
            | Run r -> (
                match run_diff r.r [| low; low |] with
                | [||] -> None
                | rr -> pack_runs rr)
          in
          match c' with
          | Some c' -> replace_container t i c'
          | None -> remove_key t i)

(* -- accounting ------------------------------------------------------------- *)

type stats = {
  containers : int;
  arrays : int;
  bitmaps : int;
  run_containers : int;
  bytes : int;
}

let word_bytes = 8

let c_words = function
  | Arr a -> Array.length a
  | Bmp _ -> bmp_words
  | Run r -> Array.length r.r

let byte_size t =
  let payload = Array.fold_left (fun acc c -> acc + c_words c) 0 t.cs in
  (payload + (2 * Array.length t.keys)) * word_bytes

let stats t =
  let arrays = ref 0 and bitmaps = ref 0 and runs = ref 0 in
  Array.iter
    (function
      | Arr _ -> incr arrays
      | Bmp _ -> incr bitmaps
      | Run _ -> incr runs)
    t.cs;
  {
    containers = Array.length t.cs;
    arrays = !arrays;
    bitmaps = !bitmaps;
    run_containers = !runs;
    bytes = byte_size t;
  }

let has_compressed t =
  Array.exists (function Bmp _ | Run _ -> true | Arr _ -> false) t.cs

let pp ppf t =
  let first = ref true in
  Format.fprintf ppf "{";
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" v)
    t;
  Format.fprintf ppf "}"

(* -- mutable builder --------------------------------------------------------

   Chunk bitmaps accumulated destructively; the immutable snapshot is cached
   and invalidated by mutation.  Mutations are single-domain by contract
   (index maintenance happens between settle passes); snapshots may be taken
   concurrently from worker domains, so the cache is published under a lock. *)

type chunkb = { cw : int array; mutable cn : int }

type builder = {
  tbl : (int, chunkb) Hashtbl.t;
  lock : Mutex.t;
  mutable snap : t option;
  mutable last_key : int;
  mutable last_chunk : chunkb option;
}

let builder () =
  {
    tbl = Hashtbl.create 4;
    lock = Mutex.create ();
    snap = None;
    last_key = -1;
    last_chunk = None;
  }

let chunkb_of b k =
  match b.last_chunk with
  | Some c when b.last_key = k -> c
  | _ ->
      let c =
        match Hashtbl.find_opt b.tbl k with
        | Some c -> c
        | None ->
            let c = { cw = Array.make bmp_words 0; cn = 0 } in
            Hashtbl.replace b.tbl k c;
            c
      in
      b.last_key <- k;
      b.last_chunk <- Some c;
      c

let badd b v =
  if v < 0 then invalid_arg "Roaring.badd: negative element";
  let c = chunkb_of b (v lsr chunk_bits) in
  let low = v land low_mask in
  let i = low / bpw and m = 1 lsl (low mod bpw) in
  if c.cw.(i) land m = 0 then begin
    c.cw.(i) <- c.cw.(i) lor m;
    c.cn <- c.cn + 1;
    b.snap <- None
  end

let bremove b v =
  if v >= 0 then begin
    match Hashtbl.find_opt b.tbl (v lsr chunk_bits) with
    | None -> ()
    | Some c ->
        let low = v land low_mask in
        let i = low / bpw and m = 1 lsl (low mod bpw) in
        if c.cw.(i) land m <> 0 then begin
          c.cw.(i) <- c.cw.(i) land lnot m;
          c.cn <- c.cn - 1;
          b.snap <- None
        end
  end

let bmem b v =
  v >= 0
  &&
  match Hashtbl.find_opt b.tbl (v lsr chunk_bits) with
  | None -> false
  | Some c ->
      let low = v land low_mask in
      c.cw.(low / bpw) land (1 lsl (low mod bpw)) <> 0

let bcardinal b = Hashtbl.fold (fun _ c acc -> acc + c.cn) b.tbl 0

let bsnapshot b =
  Mutex.lock b.lock;
  let r =
    match b.snap with
    | Some t -> t
    | None ->
        let pairs =
          Hashtbl.fold (fun k c acc -> if c.cn > 0 then (k, c) :: acc else acc) b.tbl []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let keys = Array.of_list (List.map fst pairs) in
        let cs =
          Array.of_list
            (List.map
               (fun (_, c) ->
                 match pack_words (Array.copy c.cw) with
                 | Some packed -> packed
                 | None -> assert false)
               pairs)
        in
        let t = { keys; cs } in
        b.snap <- Some t;
        t
  in
  Mutex.unlock b.lock;
  r

let bclear b =
  Hashtbl.reset b.tbl;
  b.snap <- None;
  b.last_key <- -1;
  b.last_chunk <- None
