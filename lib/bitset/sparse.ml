(* Invariant: the backing array is strictly increasing, so binary search is
   valid and merges never produce duplicates. *)

type t = int array

let empty = [||]

let singleton i =
  if i < 0 then invalid_arg "Sparse.singleton: negative element";
  [| i |]

let of_list l =
  match List.sort_uniq compare l with
  | [] -> empty
  | (x :: _) as l ->
      if x < 0 then invalid_arg "Sparse.of_list: negative element";
      Array.of_list l

let of_sorted_array_unsafe a = a

let mem s i =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) = i then true
      else if s.(mid) < i then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length s)

(* Index of the first element >= i, or length when none. *)
let lower_bound s i =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if s.(mid) < i then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length s)

let add s i =
  if i < 0 then invalid_arg "Sparse.add: negative element";
  let n = Array.length s in
  let at = lower_bound s i in
  if at < n && s.(at) = i then s
  else begin
    let r = Array.make (n + 1) i in
    Array.blit s 0 r 0 at;
    Array.blit s at r (at + 1) (n - at);
    r
  end

let remove s i =
  let n = Array.length s in
  let at = lower_bound s i in
  if at >= n || s.(at) <> i then s
  else begin
    let r = Array.make (n - 1) 0 in
    Array.blit s 0 r 0 at;
    Array.blit s (at + 1) r at (n - at - 1);
    r
  end

let merge ~keep_left_only ~keep_right_only ~keep_both a b =
  let la = Array.length a and lb = Array.length b in
  let buf = Array.make (la + lb) 0 in
  let out = ref 0 in
  let push x =
    buf.(!out) <- x;
    incr out
  in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      if keep_left_only then push x;
      incr i
    end
    else if x > y then begin
      if keep_right_only then push y;
      incr j
    end
    else begin
      if keep_both then push x;
      incr i;
      incr j
    end
  done;
  if keep_left_only then
    while !i < la do
      push a.(!i);
      incr i
    done;
  if keep_right_only then
    while !j < lb do
      push b.(!j);
      incr j
    done;
  Array.sub buf 0 !out

let union a b =
  merge ~keep_left_only:true ~keep_right_only:true ~keep_both:true a b

let inter a b =
  merge ~keep_left_only:false ~keep_right_only:false ~keep_both:true a b

let diff a b =
  merge ~keep_left_only:true ~keep_right_only:false ~keep_both:false a b

let cardinal = Array.length

let is_empty s = Array.length s = 0

let equal a b = a = b

let subset a b = Array.length (diff a b) = 0

let filter p s =
  let n = Array.length s in
  let kept = Array.make n 0 in
  let out = ref 0 in
  for i = 0 to n - 1 do
    let x = Array.unsafe_get s i in
    if p x then begin
      kept.(!out) <- x;
      incr out
    end
  done;
  if !out = n then s else Array.sub kept 0 !out

let iter f s = Array.iter f s

let fold f s init = Array.fold_left (fun acc i -> f i acc) init s

let elements s = Array.to_list s

let choose_opt s = if Array.length s = 0 then None else Some s.(0)

let max_elt_opt s =
  let n = Array.length s in
  if n = 0 then None else Some s.(n - 1)

let byte_size s = Array.length s * (Sys.int_size / 8 + 1)

let pp ppf s =
  Format.fprintf ppf "{";
  Array.iteri
    (fun k i ->
      if k > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" i)
    s;
  Format.fprintf ppf "}"
