(* Representation choice: a set stays sparse until its cardinality exceeds
   [dense_threshold] *and* its density (cardinal / (max+1)) makes a bitmap
   cheaper than one word per element.  The choice is re-made after every
   operation that can change cardinality, so long-lived sets converge to the
   cheaper representation. *)

type t = Dense of Bitset.t | Sparse of Sparse.t

let dense_threshold = 128

let normalize = function
  | Sparse s as v ->
      let n = Sparse.cardinal s in
      if n <= dense_threshold then v
      else begin
        match Sparse.max_elt_opt s with
        | None -> v
        | Some m ->
            (* One word per element sparse vs one bit per universe slot dense. *)
            if n * Sys.int_size > m + 1 then begin
              let b = Bitset.create ~capacity:(m + 1) () in
              Sparse.iter (Bitset.add b) s;
              Dense b
            end
            else v
      end
  | Dense b as v ->
      let n = Bitset.cardinal b in
      if n > dense_threshold then v
      else Sparse (Sparse.of_list (Bitset.elements b))

let empty = Sparse Sparse.empty

let singleton i = Sparse (Sparse.singleton i)

let of_list l = normalize (Sparse (Sparse.of_list l))

let of_bitset b = normalize (Dense (Bitset.copy b))

let range lo hi =
  if lo > hi then empty
  else begin
    let b = Bitset.create ~capacity:(hi + 1) () in
    for i = max 0 lo to hi do
      Bitset.add b i
    done;
    normalize (Dense b)
  end

let mem t i =
  match t with Dense b -> Bitset.mem b i | Sparse s -> Sparse.mem s i

let add t i =
  match t with
  | Dense b ->
      let b = Bitset.copy b in
      Bitset.add b i;
      Dense b
  | Sparse s -> normalize (Sparse (Sparse.add s i))

let remove t i =
  match t with
  | Dense b ->
      let b = Bitset.copy b in
      Bitset.remove b i;
      normalize (Dense b)
  | Sparse s -> Sparse (Sparse.remove s i)

let to_bitset = function
  | Dense b -> b
  | Sparse s ->
      let b =
        Bitset.create
          ~capacity:(match Sparse.max_elt_opt s with Some m -> m + 1 | None -> 64)
          ()
      in
      Sparse.iter (Bitset.add b) s;
      b

let union a b =
  match (a, b) with
  | Sparse x, Sparse y -> normalize (Sparse (Sparse.union x y))
  | _ ->
      let r = Bitset.copy (to_bitset a) in
      Bitset.union_into r (to_bitset b);
      normalize (Dense r)

let inter a b =
  match (a, b) with
  | Sparse x, Sparse y -> Sparse (Sparse.inter x y)
  | _ ->
      let r = Bitset.copy (to_bitset a) in
      Bitset.inter_into r (to_bitset b);
      normalize (Dense r)

let diff a b =
  match (a, b) with
  | Sparse x, Sparse y -> Sparse (Sparse.diff x y)
  | _ ->
      let r = Bitset.copy (to_bitset a) in
      Bitset.diff_into r (to_bitset b);
      normalize (Dense r)

let cardinal = function
  | Dense b -> Bitset.cardinal b
  | Sparse s -> Sparse.cardinal s

let is_empty = function
  | Dense b -> Bitset.is_empty b
  | Sparse s -> Sparse.is_empty s

let iter f = function
  | Dense b -> Bitset.iter f b
  | Sparse s -> Sparse.iter f s

let fold f t init =
  match t with
  | Dense b -> Bitset.fold f b init
  | Sparse s -> Sparse.fold f s init

let elements = function
  | Dense b -> Bitset.elements b
  | Sparse s -> Sparse.elements s

let equal a b =
  match (a, b) with
  | Dense x, Dense y -> Bitset.equal x y
  | Sparse x, Sparse y -> Sparse.equal x y
  | _ -> elements a = elements b

let subset a b =
  match (a, b) with
  | Dense x, Dense y -> Bitset.subset x y
  | Sparse x, Sparse y -> Sparse.subset x y
  | _ -> (
      (* Mixed representations: stop at the first counter-example instead of
         scanning the rest of [a]. *)
      try
        iter (fun i -> if not (mem b i) then raise Exit) a;
        true
      with Exit -> false)

(* In-representation filtering: this is {!Search.verify}'s hot path, where
   the old [elements] / [List.filter] / [of_list] round trip allocated a
   list cell per candidate plus a sort. *)
let filter p t =
  match t with
  | Sparse s -> normalize (Sparse (Sparse.filter p s))
  | Dense b ->
      let r =
        Bitset.create
          ~capacity:(match Bitset.max_elt_opt b with Some m -> m + 1 | None -> 64)
          ()
      in
      Bitset.iter (fun i -> if p i then Bitset.add r i) b;
      normalize (Dense r)

let choose_opt = function
  | Dense b -> Bitset.choose_opt b
  | Sparse s -> Sparse.choose_opt s

let byte_size = function
  | Dense b -> Bitset.byte_size b
  | Sparse s -> Sparse.byte_size s

let is_dense = function Dense _ -> true | Sparse _ -> false

let pp ppf = function
  | Dense b -> Bitset.pp ppf b
  | Sparse s -> Sparse.pp ppf s
