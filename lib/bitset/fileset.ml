(* Filesets are roaring-style compressed sets (see {!Roaring}): 2^16-keyed
   chunks, each stored as a sorted array, bitmap, or run container.  The old
   sparse-array / whole-universe-bitmap pair is gone; this module is a thin
   façade that keeps the historical [Fileset] API for the evaluator and adds
   the multi-way intersection and builder entry points the index needs. *)

type t = Roaring.t

let empty = Roaring.empty
let singleton = Roaring.singleton
let of_list = Roaring.of_list

(* Bitset iterates in increasing order, so the streaming constructor applies:
   no intermediate copy of the bitmap words (the old code copied the whole
   word array and then often re-sparsified it). *)
let of_bitset b = Roaring.of_increasing_iter (fun f -> Bitset.iter f b)
let of_increasing_iter = Roaring.of_increasing_iter
let range = Roaring.range
let mem = Roaring.mem
let add = Roaring.add
let remove = Roaring.remove
let union = Roaring.union
let inter = Roaring.inter
let diff = Roaring.diff
let inter_many = Roaring.inter_many
let cardinal = Roaring.cardinal
let is_empty = Roaring.is_empty
let equal = Roaring.equal
let subset = Roaring.subset
let iter = Roaring.iter
let fold = Roaring.fold
let filter = Roaring.filter
let elements = Roaring.elements
let choose_opt = Roaring.choose_opt
let max_elt_opt = Roaring.max_elt_opt
let byte_size = Roaring.byte_size
let is_dense = Roaring.has_compressed

type container_stats = Roaring.stats = {
  containers : int;
  arrays : int;
  bitmaps : int;
  run_containers : int;
  bytes : int;
}

let container_stats = Roaring.stats
let pp = Roaring.pp

module Builder = struct
  type fileset = t
  type t = Roaring.builder

  let create () = Roaring.builder ()
  let add = Roaring.badd
  let remove = Roaring.bremove
  let mem = Roaring.bmem
  let cardinal = Roaring.bcardinal
  let snapshot : t -> fileset = Roaring.bsnapshot
  let clear = Roaring.bclear
end
