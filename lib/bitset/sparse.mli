(** Immutable sparse integer sets stored as sorted arrays.

    The paper notes (section 4) that bitmaps cost [n/8] bytes per semantic
    directory regardless of how many files actually match, and that a better
    sparse-set representation is future work.  This module is that
    representation: cost is proportional to the number of elements, lookups
    are binary searches, and set operations are linear merges. *)

type t
(** An immutable set of non-negative integers. *)

val empty : t
(** The empty set. *)

val singleton : int -> t
(** One-element set.  Raises [Invalid_argument] on a negative element. *)

val of_list : int list -> t
(** Set of the listed elements (duplicates collapse). *)

val of_sorted_array_unsafe : int array -> t
(** Adopts the array, which must be strictly increasing; not copied. *)

val mem : t -> int -> bool
(** Membership by binary search, O(log n). *)

val add : t -> int -> t
(** Functional insert, O(n). *)

val remove : t -> int -> t
(** Functional delete, O(n); no-op when absent. *)

val union : t -> t -> t
(** Linear merge union. *)

val inter : t -> t -> t
(** Linear merge intersection. *)

val diff : t -> t -> t
(** Linear merge difference. *)

val cardinal : t -> int
(** Number of elements, O(1). *)

val is_empty : t -> bool
(** [is_empty s] iff [cardinal s = 0]. *)

val equal : t -> t -> bool
(** Extensional equality. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val filter : (int -> bool) -> t -> t
(** Elements satisfying the predicate, in one linear scan of the backing
    array; returns the input itself when nothing is dropped. *)

val iter : (int -> unit) -> t -> unit
(** Iterate in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val choose_opt : t -> int option
(** Smallest element, or [None] when empty. *)

val max_elt_opt : t -> int option
(** Largest element, or [None] when empty. *)

val byte_size : t -> int
(** Bytes of payload: one word per element. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 5, 9}]. *)
