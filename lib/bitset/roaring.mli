(** Roaring-style compressed immutable integer sets.

    Values are split into 2^16-element chunks; each populated chunk is stored
    as a sorted array, a bitmap, or a run-length container — whichever is
    smallest for its cardinality and clustering.  The container choice is
    canonical (a function of cardinality and run count only), so equal sets
    share a representation and comparisons can short-circuit structurally. *)

type t
(** An immutable set of non-negative integers. *)

val empty : t
val singleton : int -> t
val of_list : int list -> t

val of_increasing_iter : ((int -> unit) -> unit) -> t
(** [of_increasing_iter it] builds a set from a strictly increasing stream:
    [it] is called with a push function and must push values in strictly
    increasing order.  One pass, no intermediate set values. *)

val range : int -> int -> t
(** [range lo hi] is [{max 0 lo, ..., hi}]; empty when [lo > hi]. *)

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val inter_many : t list -> t
(** Intersection of all listed sets, evaluated rarest-first at container
    granularity without materializing pairwise intermediates.  [inter_many []]
    is [empty]. *)

val cardinal : t -> int
val is_empty : t -> bool

val equal : t -> t -> bool
(** Extensional equality; short-circuits on cardinality and chunk keys. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]; short-circuits on
    cardinality and missing chunk keys. *)

val iter : (int -> unit) -> t -> unit
(** Iterate in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold in increasing order. *)

val filter : (int -> bool) -> t -> t
val elements : t -> int list
val choose_opt : t -> int option
val max_elt_opt : t -> int option

val byte_size : t -> int
(** Payload bytes of the representation (container payloads + chunk spine). *)

type stats = {
  containers : int;
  arrays : int;
  bitmaps : int;
  run_containers : int;
  bytes : int;
}

val stats : t -> stats

val has_compressed : t -> bool
(** [true] when at least one chunk is stored as a bitmap or run container
    (i.e. the set left the plain sorted-array regime). *)

val pp : Format.formatter -> t -> unit

(** {1 Mutable builder}

    Accumulates chunk bitmaps destructively and snapshots into the immutable
    form on demand.  Mutations must come from a single domain at a time (index
    maintenance runs between settle passes); {!bsnapshot} is safe to call
    concurrently and caches its result until the next mutation. *)

type builder

val builder : unit -> builder
val badd : builder -> int -> unit
val bremove : builder -> int -> unit
val bmem : builder -> int -> bool
val bcardinal : builder -> int
val bsnapshot : builder -> t
val bclear : builder -> unit
